package serve

import (
	"sync"
	"time"
)

// BreakerState names the three classic circuit-breaker states.
type BreakerState int

const (
	// BreakerClosed lets requests through and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects requests until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a single probe; its outcome decides whether
	// the breaker closes again or re-opens for another cooldown.
	BreakerHalfOpen
)

// String names the state for /readyz and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is the circuit breaker guarding the retrain path. Retrains are
// expensive and mutate shared state; when they fail repeatedly (bad new
// labels, an injected fault, a search that cannot meet MinCommittee) the
// breaker stops burning CPU on doomed attempts and sheds retrain requests
// with a Retry-After instead, while the read path keeps serving the
// last-good snapshot untouched.
//
// The breaker trips open after `threshold` consecutive failures. After
// `cooldown` it half-opens: exactly one probe attempt is admitted, and its
// outcome either closes the breaker or re-opens it for another cooldown.
// The clock is injected so tests drive state transitions deterministically.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
}

// NewBreaker returns a closed breaker tripping after threshold consecutive
// failures and half-opening cooldown after the trip. A nil now uses
// time.Now.
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a request may proceed. When it returns false,
// retryAfter is the time until the breaker will next admit a probe —
// the value the server surfaces in the Retry-After header. A true return
// from the half-open state reserves the single probe slot; the caller
// must follow up with Success or Failure to release it.
func (b *Breaker) Allow() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, 0
	case BreakerOpen:
		remaining := b.cooldown - b.now().Sub(b.openedAt)
		if remaining > 0 {
			return false, remaining
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true, 0
	default: // BreakerHalfOpen
		if b.probing {
			return false, b.cooldown
		}
		b.probing = true
		return true, 0
	}
}

// Success records a successful attempt: the breaker closes and the
// consecutive-failure count resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// Cancel releases the probe slot of an attempt that ended without a
// verdict — a client disconnect or a handler panic between Allow and
// Success/Failure. It neither closes the breaker nor counts a failure:
// a canceled half-open probe stays half-open with the slot free, so the
// next Allow admits a fresh probe instead of shedding forever. After
// Success or Failure (both release the slot) Cancel is a no-op, so
// callers can simply defer it.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// Failure records a failed attempt. In the half-open state any failure
// re-opens immediately; in the closed state the breaker opens once the
// consecutive-failure count reaches the threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	b.probing = false
	if b.state == BreakerHalfOpen || b.failures >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
	}
}

// State returns the current state for status reporting.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
