package serve

// Durable-snapshot integration of the serving layer: persist-before-
// publish on every install (serve.go calls persist), crash recovery and
// eviction reloads from the modelstore, the shutdown flush, and the
// rollback endpoint. The division of labor with internal/modelstore:
// the store knows files, framing and versions; this file knows which
// snapshot a model should serve and how the feedback WAL's high-water
// mark stitches the label timeline to the model timeline.

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"github.com/netml/alefb/internal/modelstore"
)

// SnapMeta describes a model's newest durably persisted snapshot.
type SnapMeta struct {
	// Version is the persisted snapshot version.
	Version int64
	// Seed is the search seed recorded in the snapshot.
	Seed uint64
	// SavedAtMS is the wall-clock persist time (Unix milliseconds).
	SavedAtMS int64
}

// persist writes next durably before it is published. A nil store
// (persistence disabled) is a successful no-op, which keeps every
// memory-only test and deployment on the exact pre-durability path.
func (s *Server) persist(m *Model, next *Snapshot, seed uint64) error {
	if s.snaps == nil {
		return nil
	}
	var parent int64
	if cur := m.snap.Current(); cur != nil {
		parent = cur.Version
	}
	ds := &modelstore.Snapshot{
		Version:       next.Version,
		Parent:        parent,
		Seed:          seed,
		FeedbackRows:  next.FeedbackRows,
		ValScore:      next.ValScore,
		SavedAtUnixMS: s.cfg.now().UnixMilli(),
		Ensemble:      next.Ensemble,
		Train:         next.Train,
	}
	if err := s.snaps.Save(m.name, ds); err != nil {
		return err
	}
	m.snapMeta.Store(&SnapMeta{Version: next.Version, Seed: seed, SavedAtMS: ds.SavedAtUnixMS})
	return nil
}

// RecoverModel loads the named model's newest decodable snapshot from
// disk, folds any feedback-store rows past the snapshot's high-water
// mark into the training set (the model serves its persisted fit — the
// folded rows wait in Train for the next retrain, exactly as they would
// have on the crashed process), publishes it under its original version,
// and marks the model ready — no retrain runs. It returns the recovered
// version and whether recovery happened: (0, false, nil) means no usable
// snapshot exists and the caller should bootstrap instead. ctx is
// accepted for symmetry with BootstrapModel; recovery itself never
// searches.
func (s *Server) RecoverModel(ctx context.Context, name string) (int64, bool, error) {
	_ = ctx
	if s.snaps == nil || !s.snaps.Has(name) {
		return 0, false, nil
	}
	if err := validModelName(name); err != nil {
		return 0, false, fmt.Errorf("serve: recover: %w", err)
	}
	// Load before registering the model: a store whose every version is
	// corrupt must leave the registry untouched so the caller's
	// bootstrap starts from a clean slate.
	rec, err := s.snaps.LoadLatest(name)
	if err != nil {
		s.logf("serve: model %q: no decodable snapshot, bootstrap required: %v", name, err)
		return 0, false, nil
	}
	m, evicted := s.models.getOrCreate(name, s.newModel)
	if evicted != nil {
		evicted.closeFeedback()
		s.logf("serve: evicted cold model %q (v%d) for %q", evicted.name, evicted.snap.NextVersion()-1, name)
	}
	st, err := s.feedbackStore(m)
	if err != nil {
		return 0, false, fmt.Errorf("serve: recover %s: %w", name, err)
	}
	train := rec.Train
	folded := rec.FeedbackRows
	if rows, labels := st.RowsAfter(rec.FeedbackRows); len(rows) > 0 {
		train = train.Clone()
		for i, row := range rows {
			if err := train.AppendRow(row, labels[i]); err != nil {
				return 0, false, fmt.Errorf("serve: recover %s: replayed feedback row %d: %w", name, i, err)
			}
		}
		folded += int64(len(rows))
		s.logf("serve: model %q folded %d feedback rows past snapshot v%d's high-water mark", name, len(rows), rec.Version)
	}
	m.snap.Publish(&Snapshot{
		Ensemble:     rec.Ensemble,
		Train:        train,
		Version:      rec.Version,
		ValScore:     rec.ValScore,
		FeedbackRows: folded,
	})
	m.degraded.Store(nil)
	m.snapMeta.Store(&SnapMeta{Version: rec.Version, Seed: rec.Seed, SavedAtMS: rec.SavedAtUnixMS})
	s.logf("serve: model %q recovered snapshot v%d from disk (%d members, val %.3f, %d rows, no retrain)",
		name, rec.Version, len(rec.Ensemble.Members), rec.ValScore, train.Len())
	return rec.Version, true, nil
}

// reloadFromDisk resurrects an evicted (or never-loaded) model from its
// durable snapshot on a request miss. Single-flighted: a herd of
// requests for the same cold name decodes the snapshot once; the rest
// find it in the registry. A fresh Model carries a fresh breaker and
// retrain single-flight — eviction resets failure state by design.
func (s *Server) reloadFromDisk(ctx context.Context, name string) *Model {
	if s.snaps == nil || validModelName(name) != nil || !s.snaps.Has(name) {
		return nil
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if m := s.models.lookup(name); m != nil {
		return m
	}
	if _, ok, err := s.RecoverModel(ctx, name); err != nil || !ok {
		if err != nil {
			s.logf("serve: model %q reload from disk failed: %v", name, err)
		}
		return nil
	}
	return s.models.lookup(name)
}

// flushSnapshot brings the model's on-disk snapshot up to date with its
// served state at shutdown, folding feedback rows ingested since the
// last persist. The snapshot is rewritten under its CURRENT version —
// the model didn't change, its durable record did — so a clean stop and
// restart replays zero WAL rows and never retrains. Models whose disk
// state already matches are skipped.
func (s *Server) flushSnapshot(m *Model) error {
	if s.snaps == nil {
		return nil
	}
	snap := m.snap.Current()
	if snap == nil {
		return nil
	}
	m.fbMu.Lock()
	fb := m.fb
	m.fbMu.Unlock()
	var rows [][]float64
	var labels []int
	if fb != nil {
		rows, labels = fb.RowsAfter(snap.FeedbackRows)
	}
	meta := m.snapMeta.Load()
	if meta != nil && meta.Version == snap.Version && len(rows) == 0 {
		return nil
	}
	train := snap.Train
	folded := snap.FeedbackRows
	if len(rows) > 0 {
		train = train.Clone()
		for i, row := range rows {
			if err := train.AppendRow(row, labels[i]); err != nil {
				return fmt.Errorf("serve: flush %s: feedback row %d: %w", m.name, i, err)
			}
		}
		folded += int64(len(rows))
	}
	seed := s.cfg.AutoML.Seed
	if meta != nil {
		seed = meta.Seed
	}
	ds := &modelstore.Snapshot{
		Version:       snap.Version,
		Parent:        snap.Version - 1,
		Seed:          seed,
		FeedbackRows:  folded,
		ValScore:      snap.ValScore,
		SavedAtUnixMS: s.cfg.now().UnixMilli(),
		Ensemble:      snap.Ensemble,
		Train:         train,
	}
	if err := s.snaps.Save(m.name, ds); err != nil {
		return err
	}
	m.snapMeta.Store(&SnapMeta{Version: snap.Version, Seed: seed, SavedAtMS: ds.SavedAtUnixMS})
	s.logf("serve: model %q flushed snapshot v%d at shutdown (%d feedback rows folded)", m.name, snap.Version, len(rows))
	return nil
}

// RollbackRequest selects the snapshot version to roll back to; zero
// (or an empty body) means the version preceding the one being served.
type RollbackRequest struct {
	Version int64 `json:"version,omitempty"`
}

// RollbackResponse reports a completed rollback. Version is the NEW
// monotone snapshot version now serving (versions never rewind — a
// rollback is a new publication whose content is an old fit, so status
// endpoints and mid-flight batches keep their ordering invariants);
// RolledBackTo is the historical version whose content it serves.
type RollbackResponse struct {
	Version      int64   `json:"version"`
	RolledBackTo int64   `json:"rolled_back_to"`
	ValScore     float64 `json:"val_score"`
	Members      int     `json:"members"`
	TrainRows    int     `json:"train_rows"`
}

// handleRollback serves POST /v1/rollback and /v1/models/{model}/rollback:
// re-point serving to a prior durable snapshot. It shares the retrain
// single-flight (a rollback racing a retrain would make the outcome a
// coin flip) but deliberately NOT the circuit breaker: rollback is the
// operator's remedy FOR a bad retrain streak, and must work exactly when
// the breaker is open.
func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request, m *Model) {
	if s.snaps == nil {
		writeError(w, http.StatusNotImplemented, "snapshots_disabled",
			"server runs without a snapshot store (-snapshot-dir); rollback needs durable history")
		return
	}
	var req RollbackRequest
	if r.ContentLength != 0 {
		if !decodeJSON(w, r, &req) {
			return
		}
	}
	snap, ok := currentSnapshot(w, m)
	if !ok {
		return
	}
	if !m.retrainBusy.CompareAndSwap(false, true) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "retrain_in_progress", "a retrain or rollback is already running")
		return
	}
	defer m.retrainBusy.Store(false)

	target := req.Version
	if target == 0 {
		prev, ok := s.snaps.PreviousVersion(m.name, snap.Version)
		if !ok {
			writeError(w, http.StatusNotFound, "no_prior_version",
				fmt.Sprintf("no snapshot older than the serving v%d exists on disk", snap.Version))
			return
		}
		target = prev
	}
	if target == snap.Version {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("already serving snapshot v%d", target))
		return
	}
	rec, err := s.snaps.LoadVersion(m.name, target)
	if err != nil {
		// Neither outcome degrades the model: the serving snapshot is
		// untouched and rollback can be retried with another version.
		if errors.Is(err, modelstore.ErrNotFound) {
			writeError(w, http.StatusNotFound, "version_not_found",
				fmt.Sprintf("snapshot v%d is not on disk (pruned or never written)", target))
			return
		}
		writeError(w, http.StatusInternalServerError, "rollback_failed",
			fmt.Sprintf("snapshot v%d failed to load: %v", target, err))
		return
	}
	version, err := s.install(m, rec.Ensemble, rec.Train, rec.FeedbackRows, rec.Seed)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot_persist_failed",
			fmt.Sprintf("rollback to v%d could not persist: %v; still serving v%d", target, err, snap.Version))
		return
	}
	s.logf("serve: model %q rolled back to v%d content, serving as v%d", m.name, target, version)
	writeJSON(w, http.StatusOK, RollbackResponse{
		Version:      version,
		RolledBackTo: target,
		ValScore:     rec.ValScore,
		Members:      len(rec.Ensemble.Members),
		TrainRows:    rec.Train.Len(),
	})
}
