package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/netml/alefb/internal/rng"
)

// Mix is the relative weight of each request kind in generated load.
// Weights need not sum to one; zero weights drop the kind.
type Mix struct {
	Predict  float64
	ALE      float64
	Regions  float64
	Health   float64
	Feedback float64
}

// DefaultMix is a read-heavy production-like blend. Feedback ingestion
// is off by default; mixed-traffic runs opt in (loadgen -feedback-rate)
// to measure ingestion overhead on the predict path.
func DefaultMix() Mix { return Mix{Predict: 8, ALE: 1, Regions: 0.5, Health: 0.5} }

// LoadConfig configures one closed-loop load run. Each of Concurrency
// workers issues requests back-to-back (no pacing) until the shared
// request budget is exhausted; worker w draws its request kinds, target
// tenant and row values from rng.Derive(Seed, w), so a run is
// reproducible for a fixed config regardless of scheduling.
type LoadConfig struct {
	Base        string
	Concurrency int
	Requests    int
	Rows        int // rows per predict batch (default 16)
	Seed        uint64
	Mix         Mix
	Timeout     time.Duration // per-request (default 10s)
	// Models, when set, spreads load across named tenants: each request
	// picks one uniformly and targets /v1/models/{name}/... . Empty means
	// the unprefixed default-model routes.
	Models []string
}

// TenantStats is the per-tenant slice of a load report: request count,
// status histogram (429 sheds included, transport errors under 0) and
// latency percentiles over that tenant's successful transports.
type TenantStats struct {
	Requests      int
	ByStatus      map[int]int
	P50, P95, P99 float64
	MaxMS         float64

	lats []float64
}

// LoadReport aggregates a load run. Requests counts issued requests;
// ByStatus maps HTTP status to count (0 for transport errors); latencies
// are in milliseconds over successful transports. PerTenant breaks the
// same numbers down by model name; single-tenant runs report one
// "default" entry. Health checks target the process, not a tenant, and
// appear only in the global numbers.
type LoadReport struct {
	Requests        int
	ByStatus        map[int]int
	ByKind          map[string]int
	TransportErrors int
	P50, P95, P99   float64
	MaxMS           float64
	Elapsed         time.Duration
	PerTenant       map[string]*TenantStats
	// PerKind breaks latency and status down by endpoint, so a mixed
	// feedback+predict run shows what ingestion costs the predict path.
	PerKind map[string]*TenantStats
	// Versions counts successful predict responses by the snapshot
	// version that answered them. A run across a retrain, rollback or
	// restart shows exactly which versions served and how traffic split
	// between them — the observable side of the durability story.
	Versions map[int64]int
	// Drift summarizes the targets' off-path drift evaluators after the
	// run (nil when the mix carried no feedback traffic or no status
	// endpoint answered). Ingest-ack latency is PerKind["feedback"]; the
	// evaluation cost lives here, off the ack path.
	Drift *DriftLoadStats
}

// DriftLoadStats aggregates drift-evaluator counters across the run's
// tenants, read from their status endpoints once the load finishes.
type DriftLoadStats struct {
	// EvalSeq is the newest evaluated record sequence across tenants.
	EvalSeq int64
	// Evals and Coalesced partition the gate crossings: each crossing was
	// either evaluated or folded into a newer capture.
	Evals     int64
	Coalesced int64
	// EvalMSTotal is cumulative evaluation wall time — work the acks no
	// longer wait for.
	EvalMSTotal int64
}

// String renders the report for terminal output.
func (r *LoadReport) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "requests=%d elapsed=%s transport_errors=%d\n", r.Requests, r.Elapsed.Round(time.Millisecond), r.TransportErrors)
	statuses := make([]int, 0, len(r.ByStatus))
	for s := range r.ByStatus {
		statuses = append(statuses, s)
	}
	sort.Ints(statuses)
	for _, s := range statuses {
		fmt.Fprintf(&b, "  status %3d: %d\n", s, r.ByStatus[s])
	}
	kinds := make([]string, 0, len(r.ByKind))
	for k := range r.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		if ks := r.PerKind[k]; ks != nil {
			fmt.Fprintf(&b, "  kind %-9s requests=%d shed=%d p50=%.1f p95=%.1f p99=%.1f max=%.1f\n",
				k+":", ks.Requests, ks.ByStatus[http.StatusTooManyRequests], ks.P50, ks.P95, ks.P99, ks.MaxMS)
			continue
		}
		fmt.Fprintf(&b, "  kind %-8s %d\n", k+":", r.ByKind[k])
	}
	fmt.Fprintf(&b, "  latency ms: p50=%.1f p95=%.1f p99=%.1f max=%.1f\n", r.P50, r.P95, r.P99, r.MaxMS)
	if d := r.Drift; d != nil {
		avg := 0.0
		if d.Evals > 0 {
			avg = float64(d.EvalMSTotal) / float64(d.Evals)
		}
		fmt.Fprintf(&b, "  drift: eval_seq=%d evals=%d coalesced=%d eval_ms_total=%d avg_eval_ms=%.1f (off the ack path)\n",
			d.EvalSeq, d.Evals, d.Coalesced, d.EvalMSTotal, avg)
	}
	if len(r.Versions) > 0 {
		versions := make([]int64, 0, len(r.Versions))
		for v := range r.Versions {
			versions = append(versions, v)
		}
		sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
		for _, v := range versions {
			fmt.Fprintf(&b, "  snapshot v%d: %d predicts\n", v, r.Versions[v])
		}
	}
	tenants := make([]string, 0, len(r.PerTenant))
	for t := range r.PerTenant {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		ts := r.PerTenant[t]
		fmt.Fprintf(&b, "  tenant %-12s requests=%d shed=%d p50=%.1f p95=%.1f p99=%.1f max=%.1f\n",
			t+":", ts.Requests, ts.ByStatus[http.StatusTooManyRequests], ts.P50, ts.P95, ts.P99, ts.MaxMS)
	}
	return b.String()
}

// finalize computes percentiles from accumulated latencies.
func finalizeLats(lats []float64) (p50, p95, p99, maxMS float64) {
	if len(lats) == 0 {
		return 0, 0, 0, 0
	}
	sort.Float64s(lats)
	return percentile(lats, 0.50), percentile(lats, 0.95), percentile(lats, 0.99), lats[len(lats)-1]
}

// RunLoad drives a deterministic closed-loop load against a serve
// instance. It deliberately uses a plain non-retrying http.Client so shed
// responses (429) surface in the report instead of being smoothed over —
// the soak test asserts on exactly that visibility.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 200
	}
	if cfg.Rows <= 0 {
		cfg.Rows = 16
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = DefaultMix()
	}
	// "" targets the unprefixed default-model routes.
	tenants := []string{""}
	if len(cfg.Models) > 0 {
		tenants = cfg.Models
	}
	schemas := make(map[string]*SchemaResponse, len(tenants))
	for _, t := range tenants {
		schema, err := fetchSchema(ctx, cfg.Base, t, cfg.Timeout)
		if err != nil {
			return nil, fmt.Errorf("serve: loadgen: fetch schema for %q: %w", tenantLabel(t), err)
		}
		schemas[t] = schema
	}

	weights := []float64{cfg.Mix.Predict, cfg.Mix.ALE, cfg.Mix.Regions, cfg.Mix.Health, cfg.Mix.Feedback}
	kinds := []string{"predict", "ale", "regions", "health", "feedback"}

	var (
		mu      sync.Mutex
		report  = &LoadReport{ByStatus: map[int]int{}, ByKind: map[string]int{}, PerTenant: map[string]*TenantStats{}, PerKind: map[string]*TenantStats{}, Versions: map[int64]int{}}
		lats    []float64
		issued  int
		wg      sync.WaitGroup
		httpCli = &http.Client{Timeout: cfg.Timeout}
	)
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.Derive(cfg.Seed, uint64(w))
			for {
				if ctx.Err() != nil {
					return
				}
				mu.Lock()
				if issued >= cfg.Requests {
					mu.Unlock()
					return
				}
				issued++
				mu.Unlock()

				kind := kinds[r.Weighted(weights)]
				tenant := tenants[r.Intn(len(tenants))]
				status, lat, version, err := issueRequest(ctx, httpCli, cfg, schemas[tenant], tenant, kind, r)
				mu.Lock()
				report.Requests++
				report.ByKind[kind]++
				if err != nil {
					report.TransportErrors++
					report.ByStatus[0]++
				} else {
					report.ByStatus[status]++
					lats = append(lats, lat)
					if kind == "predict" && status == http.StatusOK {
						report.Versions[version]++
					}
				}
				ks := report.PerKind[kind]
				if ks == nil {
					ks = &TenantStats{ByStatus: map[int]int{}}
					report.PerKind[kind] = ks
				}
				ks.Requests++
				if err != nil {
					ks.ByStatus[0]++
				} else {
					ks.ByStatus[status]++
					ks.lats = append(ks.lats, lat)
				}
				if kind != "health" {
					ts := report.PerTenant[tenantLabel(tenant)]
					if ts == nil {
						ts = &TenantStats{ByStatus: map[int]int{}}
						report.PerTenant[tenantLabel(tenant)] = ts
					}
					ts.Requests++
					if err != nil {
						ts.ByStatus[0]++
					} else {
						ts.ByStatus[status]++
						ts.lats = append(ts.lats, lat)
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	report.Elapsed = time.Since(start)
	report.P50, report.P95, report.P99, report.MaxMS = finalizeLats(lats)
	for _, ts := range report.PerTenant {
		ts.P50, ts.P95, ts.P99, ts.MaxMS = finalizeLats(ts.lats)
		ts.lats = nil
	}
	for _, ks := range report.PerKind {
		ks.P50, ks.P95, ks.P99, ks.MaxMS = finalizeLats(ks.lats)
		ks.lats = nil
	}
	if cfg.Mix.Feedback > 0 {
		report.Drift = fetchDriftStats(ctx, httpCli, cfg.Base, tenants)
	}
	return report, nil
}

// fetchDriftStats reads each tenant's status endpoint after a feedback-
// carrying run and folds the drift-evaluator counters into one summary.
// Returns nil when no status endpoint answered (old server, shed, ...) —
// the report simply omits the section.
func fetchDriftStats(ctx context.Context, cli *http.Client, base string, tenants []string) *DriftLoadStats {
	var out *DriftLoadStats
	for _, t := range tenants {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+tenantPath(t, "/status"), nil)
		if err != nil {
			continue
		}
		resp, err := cli.Do(req)
		if err != nil {
			continue
		}
		var ms ModelStatus
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ms)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		if out == nil {
			out = &DriftLoadStats{}
		}
		if ms.DriftEvalSeq > out.EvalSeq {
			out.EvalSeq = ms.DriftEvalSeq
		}
		out.Evals += ms.DriftEvals
		out.Coalesced += ms.DriftEvalsCoalesced
		out.EvalMSTotal += ms.DriftEvalMSTotal
	}
	return out
}

// tenantLabel names a tenant in reports; the unprefixed routes report as
// the default model.
func tenantLabel(t string) string {
	if t == "" {
		return DefaultModel
	}
	return t
}

// tenantPath prefixes an endpoint suffix ("/predict", "/schema", ...)
// with the tenant's route base.
func tenantPath(t, suffix string) string {
	if t == "" {
		return "/v1" + suffix
	}
	return "/v1/models/" + t + suffix
}

func percentile(sorted []float64, p float64) float64 {
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func fetchSchema(ctx context.Context, base, tenant string, timeout time.Duration) (*SchemaResponse, error) {
	cli := &http.Client{Timeout: timeout}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+tenantPath(tenant, "/schema"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := cli.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("schema returned %d: %s", resp.StatusCode, raw)
	}
	var s SchemaResponse
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil, err
	}
	if len(s.Features) == 0 {
		return nil, fmt.Errorf("schema has no features")
	}
	return &s, nil
}

// sampleRow draws one feature row uniformly within the schema ranges,
// rounding integer-typed features.
func sampleRow(schema *SchemaResponse, r *rng.Rand) []float64 {
	row := make([]float64, len(schema.Features))
	for j, f := range schema.Features {
		v := r.Uniform(f.Min, f.Max)
		if f.Integer {
			v = math.Round(v)
		}
		row[j] = v
	}
	return row
}

func issueRequest(ctx context.Context, cli *http.Client, cfg LoadConfig, schema *SchemaResponse, tenant, kind string, r *rng.Rand) (status int, latMS float64, version int64, err error) {
	var method, path string
	var payload interface{}
	switch kind {
	case "predict":
		rows := make([][]float64, cfg.Rows)
		for i := range rows {
			rows[i] = sampleRow(schema, r)
		}
		method, path, payload = http.MethodPost, tenantPath(tenant, "/predict"), PredictRequest{Rows: rows}
	case "ale":
		method, path = http.MethodPost, tenantPath(tenant, "/ale")
		payload = ALERequest{
			Feature: r.Intn(len(schema.Features)),
			Class:   r.Intn(max(1, len(schema.Classes))),
		}
	case "regions":
		method, path, payload = http.MethodPost, tenantPath(tenant, "/regions"), RegionsRequest{}
	case "feedback":
		rows := make([][]float64, cfg.Rows)
		labels := make([]int, cfg.Rows)
		for i := range rows {
			rows[i] = sampleRow(schema, r)
			labels[i] = r.Intn(max(1, len(schema.Classes)))
		}
		method, path, payload = http.MethodPost, tenantPath(tenant, "/feedback"), FeedbackRequest{Rows: rows, Labels: labels}
	default:
		method, path = http.MethodGet, "/healthz"
	}
	var body io.Reader
	if payload != nil {
		raw, merr := json.Marshal(payload)
		if merr != nil {
			return 0, 0, 0, merr
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, cfg.Base+path, body)
	if err != nil {
		return 0, 0, 0, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := cli.Do(req)
	if err != nil {
		return 0, 0, 0, err
	}
	if kind == "predict" && resp.StatusCode == http.StatusOK {
		// Decode just the snapshot version for the per-version report;
		// unrelated fields are skipped cheaply.
		var pr struct {
			Version int64 `json:"version"`
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		_ = json.Unmarshal(raw, &pr)
		version = pr.Version
	} else {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	}
	resp.Body.Close()
	return resp.StatusCode, float64(time.Since(start).Microseconds()) / 1000, version, nil
}
