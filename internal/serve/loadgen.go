package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/netml/alefb/internal/rng"
)

// Mix is the relative weight of each request kind in generated load.
// Weights need not sum to one; zero weights drop the kind.
type Mix struct {
	Predict float64
	ALE     float64
	Regions float64
	Health  float64
}

// DefaultMix is a read-heavy production-like blend.
func DefaultMix() Mix { return Mix{Predict: 8, ALE: 1, Regions: 0.5, Health: 0.5} }

// LoadConfig configures one closed-loop load run. Each of Concurrency
// workers issues requests back-to-back (no pacing) until the shared
// request budget is exhausted; worker w draws its request kinds and row
// values from rng.Derive(Seed, w), so a run is reproducible for a fixed
// config regardless of scheduling.
type LoadConfig struct {
	Base        string
	Concurrency int
	Requests    int
	Rows        int // rows per predict batch (default 16)
	Seed        uint64
	Mix         Mix
	Timeout     time.Duration // per-request (default 10s)
}

// LoadReport aggregates a load run. Requests counts issued requests;
// ByStatus maps HTTP status to count (0 for transport errors); latencies
// are in milliseconds over successful transports.
type LoadReport struct {
	Requests        int
	ByStatus        map[int]int
	ByKind          map[string]int
	TransportErrors int
	P50, P95, P99   float64
	MaxMS           float64
	Elapsed         time.Duration
}

// String renders the report for terminal output.
func (r *LoadReport) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "requests=%d elapsed=%s transport_errors=%d\n", r.Requests, r.Elapsed.Round(time.Millisecond), r.TransportErrors)
	statuses := make([]int, 0, len(r.ByStatus))
	for s := range r.ByStatus {
		statuses = append(statuses, s)
	}
	sort.Ints(statuses)
	for _, s := range statuses {
		fmt.Fprintf(&b, "  status %3d: %d\n", s, r.ByStatus[s])
	}
	kinds := make([]string, 0, len(r.ByKind))
	for k := range r.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "  kind %-8s %d\n", k+":", r.ByKind[k])
	}
	fmt.Fprintf(&b, "  latency ms: p50=%.1f p95=%.1f p99=%.1f max=%.1f\n", r.P50, r.P95, r.P99, r.MaxMS)
	return b.String()
}

// RunLoad drives a deterministic closed-loop load against a serve
// instance. It deliberately uses a plain non-retrying http.Client so shed
// responses (429) surface in the report instead of being smoothed over —
// the soak test asserts on exactly that visibility.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 200
	}
	if cfg.Rows <= 0 {
		cfg.Rows = 16
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = DefaultMix()
	}
	schema, err := fetchSchema(ctx, cfg.Base, cfg.Timeout)
	if err != nil {
		return nil, fmt.Errorf("serve: loadgen: fetch schema: %w", err)
	}

	weights := []float64{cfg.Mix.Predict, cfg.Mix.ALE, cfg.Mix.Regions, cfg.Mix.Health}
	kinds := []string{"predict", "ale", "regions", "health"}

	var (
		mu      sync.Mutex
		report  = &LoadReport{ByStatus: map[int]int{}, ByKind: map[string]int{}}
		lats    []float64
		issued  int
		wg      sync.WaitGroup
		httpCli = &http.Client{Timeout: cfg.Timeout}
	)
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.Derive(cfg.Seed, uint64(w))
			for {
				if ctx.Err() != nil {
					return
				}
				mu.Lock()
				if issued >= cfg.Requests {
					mu.Unlock()
					return
				}
				issued++
				mu.Unlock()

				kind := kinds[r.Weighted(weights)]
				status, lat, err := issueRequest(ctx, httpCli, cfg, schema, kind, r)
				mu.Lock()
				report.Requests++
				report.ByKind[kind]++
				if err != nil {
					report.TransportErrors++
					report.ByStatus[0]++
				} else {
					report.ByStatus[status]++
					lats = append(lats, lat)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	report.Elapsed = time.Since(start)
	if len(lats) > 0 {
		sort.Float64s(lats)
		report.P50 = percentile(lats, 0.50)
		report.P95 = percentile(lats, 0.95)
		report.P99 = percentile(lats, 0.99)
		report.MaxMS = lats[len(lats)-1]
	}
	return report, nil
}

func percentile(sorted []float64, p float64) float64 {
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func fetchSchema(ctx context.Context, base string, timeout time.Duration) (*SchemaResponse, error) {
	cli := &http.Client{Timeout: timeout}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/schema", nil)
	if err != nil {
		return nil, err
	}
	resp, err := cli.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("schema returned %d: %s", resp.StatusCode, raw)
	}
	var s SchemaResponse
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil, err
	}
	if len(s.Features) == 0 {
		return nil, fmt.Errorf("schema has no features")
	}
	return &s, nil
}

// sampleRow draws one feature row uniformly within the schema ranges,
// rounding integer-typed features.
func sampleRow(schema *SchemaResponse, r *rng.Rand) []float64 {
	row := make([]float64, len(schema.Features))
	for j, f := range schema.Features {
		v := r.Uniform(f.Min, f.Max)
		if f.Integer {
			v = math.Round(v)
		}
		row[j] = v
	}
	return row
}

func issueRequest(ctx context.Context, cli *http.Client, cfg LoadConfig, schema *SchemaResponse, kind string, r *rng.Rand) (status int, latMS float64, err error) {
	var method, path string
	var payload interface{}
	switch kind {
	case "predict":
		rows := make([][]float64, cfg.Rows)
		for i := range rows {
			rows[i] = sampleRow(schema, r)
		}
		method, path, payload = http.MethodPost, "/v1/predict", PredictRequest{Rows: rows}
	case "ale":
		method, path = http.MethodPost, "/v1/ale"
		payload = ALERequest{
			Feature: r.Intn(len(schema.Features)),
			Class:   r.Intn(max(1, len(schema.Classes))),
		}
	case "regions":
		method, path, payload = http.MethodPost, "/v1/regions", RegionsRequest{}
	default:
		method, path = http.MethodGet, "/healthz"
	}
	var body io.Reader
	if payload != nil {
		raw, merr := json.Marshal(payload)
		if merr != nil {
			return 0, 0, merr
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, cfg.Base+path, body)
	if err != nil {
		return 0, 0, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := cli.Do(req)
	if err != nil {
		return 0, 0, err
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	return resp.StatusCode, float64(time.Since(start).Microseconds()) / 1000, nil
}
