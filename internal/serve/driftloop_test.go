package serve

// Tests of the off-path debounced drift evaluator: the determinism
// oracle (a published DriftStatus at sequence S is bit-identical to the
// seed's inline evaluation at S, independent of the worker count), the
// deterministic gate spacing, the capture-coalescing accounting, and
// the disconnect fix — a client going away after the durable append no
// longer cancels the evaluation the rows earned.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/netml/alefb/internal/core"
	"github.com/netml/alefb/internal/rng"
)

// driftBatches cuts n band rows into deterministic variable-size batches.
func driftBatches(n int, seed uint64) ([][][]float64, [][]int) {
	rows, labels := bandRows(n)
	r := rng.New(seed)
	var bRows [][][]float64
	var bLabels [][]int
	for len(rows) > 0 {
		k := 1 + r.Intn(4)
		if k > len(rows) {
			k = len(rows)
		}
		bRows = append(bRows, rows[:k])
		bLabels = append(bLabels, labels[:k])
		rows, labels = rows[k:], labels[k:]
	}
	return bRows, bLabels
}

// pollEvalSeq waits for the model's evaluator to complete an evaluation
// at exactly seq.
func pollEvalSeq(t *testing.T, m *Model, seq int64) {
	t.Helper()
	m.driftEvalMu.Lock()
	ev := m.driftEval
	m.driftEvalMu.Unlock()
	if ev == nil {
		t.Fatal("no drift evaluator after a monitored ingest")
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if got := ev.evalSeq.Load(); got == seq {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("evaluator never reached seq %d (at %d)", seq, ev.evalSeq.Load())
}

// TestAsyncDriftOracleBitIdentity is the determinism acceptance test:
// for several ingest schedules and for Workers 1 vs 8, the DriftStatus
// published at each record sequence equals — bit for bit — the seed's
// synchronous evaluation over the store's trailing window at that same
// sequence.
func TestAsyncDriftOracleBitIdentity(t *testing.T) {
	for _, seed := range []uint64{3, 11, 77} {
		for _, workers := range []int{1, 8} {
			s := newTestServer(t, func(c *Config) {
				c.DriftThreshold = 1e9 // monitor on, never retrain
				c.DriftWindow = 16
				c.Feedback = core.Config{Bins: 8, Workers: workers}
			})
			ts := httptest.NewServer(s.Handler())
			m := s.Model(DefaultModel)
			snap := m.snap.Current()

			bRows, bLabels := driftBatches(24, seed)
			var shadowRows [][]float64
			var shadowLabels []int
			var seq int64
			for i := range bRows {
				status, _, body := doReq(t, "POST", ts.URL+"/v1/feedback",
					FeedbackRequest{Rows: bRows[i], Labels: bLabels[i]})
				if status != 200 {
					t.Fatalf("seed %d workers %d ingest %d: %d (%s)", seed, workers, i, status, body)
				}
				shadowRows = append(shadowRows, bRows[i]...)
				shadowLabels = append(shadowLabels, bLabels[i]...)
				seq += int64(len(bRows[i]))
				pollEvalSeq(t, m, seq)

				// Oracle: the seed's inline evaluation over the trailing
				// window at this sequence.
				wr, wl := shadowRows, shadowLabels
				if len(wr) > s.cfg.DriftWindow {
					wr = wr[len(wr)-s.cfg.DriftWindow:]
					wl = wl[len(wl)-s.cfg.DriftWindow:]
				}
				want, err := core.WindowDisagreementCtx(context.Background(), snap.Ensemble.Models(),
					snap.Train.Schema, wr, wl, s.cfg.DriftThreshold, s.cfg.Feedback)
				if err != nil {
					t.Fatal(err)
				}
				got := m.drift.Load()
				if got == nil || got.Std != want.PeakStd || got.Feature != want.Name ||
					got.Drifted != want.Drifted || got.Seq != seq {
					t.Fatalf("seed %d workers %d seq %d: published %+v, oracle std=%v feature=%q drifted=%v",
						seed, workers, seq, got, want.PeakStd, want.Name, want.Drifted)
				}
			}
			ts.Close()
			if err := s.Shutdown(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestDriftEvalGateSpacing pins the debounce contract: with
// DriftEvalEvery = 8 and 3-row batches, evaluations happen exactly when
// the acknowledged sequence reaches or crosses a multiple of 8 — at
// sequences 9, 18 and 24 — and nowhere else.
func TestDriftEvalGateSpacing(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.DriftThreshold = 1e9
		c.DriftWindow = 16
		c.DriftEvalEvery = 8
		c.Feedback = core.Config{Bins: 8}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	m := s.Model(DefaultModel)

	gates := map[int64]int64{9: 9, 18: 18, 24: 24} // total -> expected evalSeq after it
	var total, lastGate int64
	for i := 0; i < 10; i++ {
		rows, labels := bandRows(3)
		status, _, body := doReq(t, "POST", ts.URL+"/v1/feedback", FeedbackRequest{Rows: rows, Labels: labels})
		if status != 200 {
			t.Fatalf("ingest %d: %d (%s)", i, status, body)
		}
		total += 3
		if g, ok := gates[total]; ok {
			lastGate = g
		}
		pollEvalSeq(t, m, lastGate)
	}
	m.driftEvalMu.Lock()
	ev := m.driftEval
	m.driftEvalMu.Unlock()
	if got := ev.evals.Load(); got != 3 {
		t.Fatalf("evals = %d, want exactly 3 (gates at 9, 18, 24)", got)
	}
	if got := ev.evalSeq.Load(); got != 24 {
		t.Fatalf("final evalSeq = %d, want 24", got)
	}
	if ds := m.drift.Load(); ds == nil || ds.Seq != 24 {
		t.Fatalf("published drift status %+v, want one at seq 24", ds)
	}

	var ms ModelStatus
	_, _, body := doReq(t, "GET", ts.URL+"/v1/status", nil)
	if err := json.Unmarshal(body, &ms); err != nil {
		t.Fatal(err)
	}
	if ms.DriftEvalEvery != 8 || ms.DriftEvalSeq != 24 || ms.DriftEvals != 3 {
		t.Fatalf("status = every %d, seq %d, evals %d; want 8/24/3",
			ms.DriftEvalEvery, ms.DriftEvalSeq, ms.DriftEvals)
	}
}

// TestDriftCoalescingConservation fires a run of back-to-back ingests
// without waiting in between and checks the burst-coalescing ledger:
// every gate crossing is either evaluated or folded into a newer
// capture, never dropped — and the final published evaluation covers
// the newest sequence.
func TestDriftCoalescingConservation(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.DriftThreshold = 1e9
		c.DriftWindow = 16
		c.Feedback = core.Config{Bins: 16}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	m := s.Model(DefaultModel)

	const ingests = 12
	rows, labels := bandRows(2)
	for i := 0; i < ingests; i++ {
		status, _, body := doReq(t, "POST", ts.URL+"/v1/feedback", FeedbackRequest{Rows: rows, Labels: labels})
		if status != 200 {
			t.Fatalf("ingest %d: %d (%s)", i, status, body)
		}
	}
	pollEvalSeq(t, m, 2*ingests)
	m.driftEvalMu.Lock()
	ev := m.driftEval
	m.driftEvalMu.Unlock()
	evals, coalesced := ev.evals.Load(), ev.coalesced.Load()
	// With DriftEvalEvery 1 every sequential ingest crosses a gate, so the
	// crossings must be fully accounted for between the two counters.
	if evals+coalesced != ingests {
		t.Fatalf("evals %d + coalesced %d != %d gate crossings", evals, coalesced, ingests)
	}
	if evals < 1 {
		t.Fatal("no evaluation completed")
	}
}

// TestDriftEvalSurvivesClientDisconnect pins the bug fix carried by the
// off-path move: the seed evaluated under r.Context(), so a client that
// disconnected right after the durable append silently canceled the
// drift check its rows had earned. The evaluator runs under the server's
// retrain context instead — an already-canceled request context must
// still produce a completed evaluation.
func TestDriftEvalSurvivesClientDisconnect(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.DriftThreshold = 1e9
		c.DriftWindow = 16
		c.Feedback = core.Config{Bins: 8}
	})
	defer s.Shutdown(context.Background())
	m := s.Model(DefaultModel)

	rows, labels := bandRows(4)
	raw, err := json.Marshal(FeedbackRequest{Rows: rows, Labels: labels})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone
	req := httptest.NewRequest("POST", "/v1/feedback", bytes.NewReader(raw)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.handleFeedback(rec, req, m)
	if rec.Code != 200 {
		t.Fatalf("ingest with canceled context = %d (%s)", rec.Code, rec.Body.String())
	}
	// The evaluation still completes: it runs under the server's retrain
	// context, not the dead request's.
	pollEvalSeq(t, m, 4)
	if ds := m.drift.Load(); ds == nil || ds.Seq != 4 {
		t.Fatalf("drift status %+v, want a completed evaluation at seq 4", ds)
	}
}
