package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/netml/alefb/internal/rng"
)

// APIError is a non-2xx response decoded from the server's structured
// error envelope.
type APIError struct {
	Status     int
	Code       string
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: %d %s: %s", e.Status, e.Code, e.Message)
}

// Client is a deterministic retrying client for the serve API. Transient
// failures (429, 5xx, transport errors) are retried with exponential
// backoff and jitter drawn from the repo's seeded generator, so a test or
// replay with the same seed observes the identical retry schedule. A
// Retry-After header from the server overrides the computed delay when it
// asks for a longer wait. Retrain narrows the policy: only shed responses
// (429, 503) and transport errors are retried there, because a 500 means
// a full AutoML search already ran and failed — replaying it would burn
// another search per retry and feed the server's circuit breaker.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the transport; defaults to a fresh http.Client.
	HTTP *http.Client
	// MaxRetries bounds retry attempts after the first try (default 4).
	MaxRetries int
	// BaseDelay is the first backoff delay (default 50ms); attempt n waits
	// BaseDelay<<n, capped at MaxDelay (default 2s), with jitter in
	// [d/2, d).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Sleep, when non-nil, replaces the context-aware timer wait between
	// retries; tests substitute a recorder. The default wait returns early
	// when the request context is canceled.
	Sleep func(time.Duration)

	mu sync.Mutex
	r  *rng.Rand
}

// NewClient returns a Client with the default retry policy and the jitter
// stream seeded from seed.
func NewClient(base string, seed uint64) *Client {
	return &Client{
		Base:       base,
		HTTP:       &http.Client{},
		MaxRetries: 4,
		BaseDelay:  50 * time.Millisecond,
		MaxDelay:   2 * time.Second,
		r:          rng.New(seed),
	}
}

// backoff returns the jittered delay before retry attempt (0-based).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.BaseDelay << uint(attempt)
	if d > c.MaxDelay || d <= 0 {
		d = c.MaxDelay
	}
	c.mu.Lock()
	f := c.r.Float64()
	c.mu.Unlock()
	return d/2 + time.Duration(f*float64(d/2))
}

// retryTransient is the default retry policy: 429 and any 5xx warrant
// another attempt.
func retryTransient(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// retryShedOnly retries only load-shedding rejections — 429 (admission
// queue full) and 503 (breaker open / no snapshot) — and is the policy
// for /v1/retrain: a 500 there reports a search that genuinely ran and
// failed, and replaying it would launch another full search per retry
// while driving the breaker's consecutive-failure count.
func retryShedOnly(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// do runs one request with retries, decoding a 2xx JSON body into out.
// retryable decides which non-2xx statuses warrant another attempt;
// transport errors are always retried.
func (c *Client) do(ctx context.Context, method, path string, in, out interface{}, retryable func(int) bool) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("serve: encode request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.Base+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.HTTP.Do(req)
		switch {
		case err != nil:
			lastErr = err
		default:
			if resp.StatusCode < 300 {
				err := json.NewDecoder(resp.Body).Decode(out)
				resp.Body.Close()
				if err != nil {
					return fmt.Errorf("serve: decode response: %w", err)
				}
				return nil
			}
			apiErr := decodeAPIError(resp)
			resp.Body.Close()
			if !retryable(resp.StatusCode) {
				return apiErr
			}
			lastErr = apiErr
		}
		if attempt >= c.MaxRetries {
			return fmt.Errorf("serve: giving up after %d attempts: %w", attempt+1, lastErr)
		}
		d := c.backoff(attempt)
		if ae, ok := lastErr.(*APIError); ok && ae.RetryAfter > d {
			d = ae.RetryAfter
		}
		if err := c.wait(ctx, d); err != nil {
			return err
		}
	}
}

// wait blocks for the backoff delay or until ctx is canceled, whichever
// comes first — a Retry-After can be seconds long, and a caller that
// gave up must not sit through it. A substituted Sleep (test recorder)
// is called instead of the timer; cancellation is still honored around it.
func (c *Client) wait(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if c.Sleep != nil {
		c.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// decodeAPIError turns a non-2xx response into an *APIError, tolerating
// bodies that are not the structured envelope.
func decodeAPIError(resp *http.Response) *APIError {
	ae := &APIError{Status: resp.StatusCode, Code: "unknown"}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
		ae.RetryAfter = time.Duration(secs) * time.Second
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var eb ErrorBody
	if json.Unmarshal(raw, &eb) == nil && eb.Error.Code != "" {
		ae.Code = eb.Error.Code
		ae.Message = eb.Error.Message
	} else {
		ae.Message = string(raw)
	}
	return ae
}

// Predict submits a batch of rows for classification.
func (c *Client) Predict(ctx context.Context, rows [][]float64) (*PredictResponse, error) {
	var out PredictResponse
	if err := c.do(ctx, http.MethodPost, "/v1/predict", PredictRequest{Rows: rows}, &out, retryTransient); err != nil {
		return nil, err
	}
	return &out, nil
}

// ALE fetches the committee effect curve for one feature.
func (c *Client) ALE(ctx context.Context, req ALERequest) (*ALEResponse, error) {
	var out ALEResponse
	if err := c.do(ctx, http.MethodPost, "/v1/ale", req, &out, retryTransient); err != nil {
		return nil, err
	}
	return &out, nil
}

// Regions fetches the disagreement-region analysis.
func (c *Client) Regions(ctx context.Context, req RegionsRequest) (*RegionsResponse, error) {
	var out RegionsResponse
	if err := c.do(ctx, http.MethodPost, "/v1/regions", req, &out, retryTransient); err != nil {
		return nil, err
	}
	return &out, nil
}

// Retrain triggers a retrain, optionally appending newly labelled rows.
// Only shed responses (429, 503) and transport errors are retried here:
// a 409 conflict means another retrain is in flight (the caller decides
// whether to wait for it), and a 500 means a full search already ran and
// failed — retrying it would launch another search and push the server's
// breaker toward open.
func (c *Client) Retrain(ctx context.Context, req RetrainRequest) (*RetrainResponse, error) {
	var out RetrainResponse
	if err := c.do(ctx, http.MethodPost, "/v1/retrain", req, &out, retryShedOnly); err != nil {
		return nil, err
	}
	return &out, nil
}

// Feedback ingests labelled rows into the default model's feedback
// store. Like Retrain, only shed responses (429, 503) and transport
// errors are retried: the append is not idempotent — a 5xx after a
// partial failure must surface to the caller, and a 503 store-dirty
// response means the store rejects everything until reopened, so
// retrying it is safe by construction.
func (c *Client) Feedback(ctx context.Context, req FeedbackRequest) (*FeedbackResponse, error) {
	return c.ModelFeedback(ctx, "", req)
}

// ModelFeedback is Feedback against a named model ("" selects the
// default model's unprefixed route).
func (c *Client) ModelFeedback(ctx context.Context, model string, req FeedbackRequest) (*FeedbackResponse, error) {
	path := "/v1/feedback"
	if model != "" {
		path = "/v1/models/" + model + "/feedback"
	}
	var out FeedbackResponse
	if err := c.do(ctx, http.MethodPost, path, req, &out, retryShedOnly); err != nil {
		return nil, err
	}
	return &out, nil
}

// Rollback re-points the default model to a prior durable snapshot
// (req.Version 0 selects the version preceding the serving one). Like
// Retrain, only shed responses (429, 503 from admission) and transport
// errors are retried: a rollback is not idempotent across retries — the
// "previous version" target moves with each publication — so outcome
// errors must surface to the caller.
func (c *Client) Rollback(ctx context.Context, req RollbackRequest) (*RollbackResponse, error) {
	return c.ModelRollback(ctx, "", req)
}

// ModelRollback is Rollback against a named model ("" selects the
// default model's unprefixed route).
func (c *Client) ModelRollback(ctx context.Context, model string, req RollbackRequest) (*RollbackResponse, error) {
	path := "/v1/rollback"
	if model != "" {
		path = "/v1/models/" + model + "/rollback"
	}
	var out RollbackResponse
	if err := c.do(ctx, http.MethodPost, path, req, &out, retryShedOnly); err != nil {
		return nil, err
	}
	return &out, nil
}

// Status fetches the default model's serving/feedback/drift status.
func (c *Client) Status(ctx context.Context) (*ModelStatus, error) {
	return c.ModelStatus(ctx, "")
}

// ModelStatus fetches a named model's status ("" selects the default).
func (c *Client) ModelStatus(ctx context.Context, model string) (*ModelStatus, error) {
	path := "/v1/status"
	if model != "" {
		path = "/v1/models/" + model + "/status"
	}
	var out ModelStatus
	if err := c.do(ctx, http.MethodGet, path, nil, &out, retryTransient); err != nil {
		return nil, err
	}
	return &out, nil
}

// Schema fetches the feature schema of the served snapshot.
func (c *Client) Schema(ctx context.Context) (*SchemaResponse, error) {
	var out SchemaResponse
	if err := c.do(ctx, http.MethodGet, "/v1/schema", nil, &out, retryTransient); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ready fetches /readyz without retries, decoding the body regardless of
// status so callers can observe the degraded state directly.
func (c *Client) Ready(ctx context.Context) (*ReadyResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/readyz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("serve: decode readyz: %w", err)
	}
	return &out, nil
}
