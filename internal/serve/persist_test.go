package serve

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/faultinject"
)

// probProbe bit-compares two ensembles' batch predictions over rows.
func probProbe(t *testing.T, label string, want, got *automl.Ensemble, rows [][]float64) {
	t.Helper()
	w := make([][]float64, len(rows))
	g := make([][]float64, len(rows))
	for i := range rows {
		w[i] = make([]float64, want.NumClasses)
		g[i] = make([]float64, got.NumClasses)
	}
	want.PredictProbaBatchInto(rows, w)
	got.PredictProbaBatchInto(rows, g)
	for i := range w {
		for j := range w[i] {
			if math.Float64bits(w[i][j]) != math.Float64bits(g[i][j]) {
				t.Fatalf("%s: row %d class %d: %v != %v (bit mismatch)", label, i, j, g[i][j], w[i][j])
			}
		}
	}
}

// TestPersistRestartWithoutRetrain pins the headline recovery path: a
// server publishes durably, a second process recovers from disk, serves
// the same version with bit-identical predictions, and never retrains.
func TestPersistRestartWithoutRetrain(t *testing.T) {
	train, ensA, _ := fixture(t)
	dir := t.TempDir()
	s1 := newTestServer(t, func(c *Config) { c.SnapshotDir = dir })
	if got := s1.def.snap.Current().Version; got != 1 {
		t.Fatalf("install published v%d, want 1", got)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	s2 := New(Config{AutoML: serveAutoML(11), SnapshotDir: dir})
	v, ok, err := s2.RecoverModel(context.Background(), DefaultModel)
	if err != nil || !ok {
		t.Fatalf("RecoverModel = %d, %v, %v", v, ok, err)
	}
	if v != 1 {
		t.Fatalf("recovered v%d, want 1", v)
	}
	if got := s2.def.retrains.Load(); got != 0 {
		t.Fatalf("recovery ran %d retrains, want 0", got)
	}
	snap := s2.def.snap.Current()
	if snap == nil || snap.Version != 1 {
		t.Fatalf("recovered snapshot = %+v", snap)
	}
	probProbe(t, "restart", ensA, snap.Ensemble, train.X[:32])
	st := s2.modelStatus(s2.def)
	if st.Status != "ready" || !st.SnapshotDurable || st.SnapshotVersion != 1 {
		t.Fatalf("recovered status = %+v", st)
	}
}

// TestPersistKillAtAnyByte is the acceptance-criteria chaos test: the
// newest snapshot file is truncated at a sweep of byte offsets (the
// torn tail a kill-at-any-point leaves behind) and each time a fresh
// server must come up serving predictions bit-identical to the
// never-crashed oracle of whichever version survived, with zero
// retrains.
func TestPersistKillAtAnyByte(t *testing.T) {
	train, ensA, ensB := fixture(t)
	dir := t.TempDir()
	s1 := newTestServer(t, func(c *Config) { c.SnapshotDir = dir })
	if v := s1.Install(ensB, train); v != 2 {
		t.Fatalf("second install published v%d, want 2", v)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	newest := filepath.Join(dir, DefaultModel, fmt.Sprintf("v%020d.snap", 2))
	blob, err := os.ReadFile(newest)
	if err != nil {
		t.Fatalf("read newest snapshot: %v", err)
	}

	probe := train.X[:16]
	offsets := []int{0}
	for n := 1; n < 256 && n < len(blob); n += 13 {
		offsets = append(offsets, n)
	}
	for n := 256; n < len(blob); n += 997 {
		offsets = append(offsets, n)
	}
	offsets = append(offsets, len(blob))
	for _, n := range offsets {
		if err := os.WriteFile(newest, blob[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		s := New(Config{AutoML: serveAutoML(11), SnapshotDir: dir})
		v, ok, err := s.RecoverModel(context.Background(), DefaultModel)
		if err != nil || !ok {
			t.Fatalf("kill@%d: RecoverModel = %v, %v", n, ok, err)
		}
		oracle, wantV := ensA, int64(1)
		if n == len(blob) {
			oracle, wantV = ensB, 2
		}
		if v != wantV {
			t.Fatalf("kill@%d: recovered v%d, want v%d", n, v, wantV)
		}
		if got := s.def.retrains.Load(); got != 0 {
			t.Fatalf("kill@%d: %d retrains ran, want 0", n, got)
		}
		probProbe(t, fmt.Sprintf("kill@%d", n), oracle, s.def.snap.Current().Ensemble, probe)
	}
}

// TestPersistShutdownFlushFoldsIngest pins the graceful-stop satellite:
// rows ingested after the last publish are flushed into the snapshot at
// shutdown (same version — the model didn't change, its durable record
// did), so a restart folds zero WAL rows and never retrains.
func TestPersistShutdownFlushFoldsIngest(t *testing.T) {
	train, ensA, _ := fixture(t)
	snapDir, fbDir := t.TempDir(), t.TempDir()
	s1 := newTestServer(t, func(c *Config) {
		c.SnapshotDir = snapDir
		c.FeedbackDir = fbDir
	})
	ts := httptest.NewServer(s1.Handler())
	rows := [][]float64{{0.1, 0.5}, {0.9, 0.5}, {0.2, 0.3}}
	status, body, err := postJSON(ts.URL+"/v1/feedback", FeedbackRequest{Rows: rows, Labels: []int{0, 1, 0}})
	if err != nil || status != 200 {
		t.Fatalf("feedback: %d %s %v", status, body, err)
	}
	ts.Close()
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	s2 := New(Config{AutoML: serveAutoML(11), SnapshotDir: snapDir, FeedbackDir: fbDir})
	v, ok, err := s2.RecoverModel(context.Background(), DefaultModel)
	if err != nil || !ok || v != 1 {
		t.Fatalf("RecoverModel = %d, %v, %v", v, ok, err)
	}
	snap := s2.def.snap.Current()
	if snap.FeedbackRows != 3 {
		t.Fatalf("recovered high-water mark = %d, want 3 (flush folded the ingest)", snap.FeedbackRows)
	}
	if snap.Train.Len() != train.Len()+3 {
		t.Fatalf("recovered train rows = %d, want %d", snap.Train.Len(), train.Len()+3)
	}
	if got := s2.def.retrains.Load(); got != 0 {
		t.Fatalf("clean stop + restart ran %d retrains, want 0", got)
	}
	probProbe(t, "flush", ensA, snap.Ensemble, train.X[:16])

	// The flush rewrote v1 in place: still exactly one version on disk.
	if vs := s2.snaps.Versions(DefaultModel); len(vs) != 1 || vs[0] != 1 {
		t.Fatalf("disk versions after flush = %v, want [1]", vs)
	}
}

// TestPersistCrashAfterIngestReplaysWAL is the crash twin of the flush
// test: no graceful shutdown, so the ingested rows live only in the
// feedback WAL — recovery must fold exactly the suffix past the
// snapshot's high-water mark while serving the persisted fit unchanged.
func TestPersistCrashAfterIngestReplaysWAL(t *testing.T) {
	train, ensA, _ := fixture(t)
	snapDir, fbDir := t.TempDir(), t.TempDir()
	s1 := newTestServer(t, func(c *Config) {
		c.SnapshotDir = snapDir
		c.FeedbackDir = fbDir
	})
	ts := httptest.NewServer(s1.Handler())
	status, body, err := postJSON(ts.URL+"/v1/feedback", FeedbackRequest{
		Rows: [][]float64{{0.3, 0.3}, {0.8, 0.8}}, Labels: []int{0, 1}})
	if err != nil || status != 200 {
		t.Fatalf("feedback: %d %s %v", status, body, err)
	}
	ts.Close()
	// Crash: no Shutdown, no flush. Only release the WAL file handle so
	// the second store can open the directory.
	s1.def.closeFeedback()

	s2 := New(Config{AutoML: serveAutoML(11), SnapshotDir: snapDir, FeedbackDir: fbDir})
	v, ok, err := s2.RecoverModel(context.Background(), DefaultModel)
	if err != nil || !ok || v != 1 {
		t.Fatalf("RecoverModel = %d, %v, %v", v, ok, err)
	}
	snap := s2.def.snap.Current()
	if snap.FeedbackRows != 2 || snap.Train.Len() != train.Len()+2 {
		t.Fatalf("recovered mark=%d rows=%d, want mark=2 rows=%d",
			snap.FeedbackRows, snap.Train.Len(), train.Len()+2)
	}
	if got := s2.def.retrains.Load(); got != 0 {
		t.Fatalf("crash recovery ran %d retrains, want 0", got)
	}
	probProbe(t, "wal-replay", ensA, snap.Ensemble, train.X[:16])
}

// TestRollback pins the rollback endpoint end to end through the
// Client: default target (previous version), explicit target, and the
// error paths — always publishing as a NEW monotone version.
func TestRollback(t *testing.T) {
	train, ensA, ensB := fixture(t)
	dir := t.TempDir()
	s := newTestServer(t, func(c *Config) { c.SnapshotDir = dir })
	s.Install(ensB, train) // v2
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cli := NewClient(ts.URL, 1)
	ctx := context.Background()

	// Default target: the version before the serving one.
	resp, err := cli.Rollback(ctx, RollbackRequest{})
	if err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	if resp.RolledBackTo != 1 || resp.Version != 3 {
		t.Fatalf("rollback = %+v, want rolled_back_to=1 version=3", resp)
	}
	probProbe(t, "rollback-prev", ensA, s.def.snap.Current().Ensemble, train.X[:16])

	// Explicit target back to the v2 content.
	resp, err = cli.Rollback(ctx, RollbackRequest{Version: 2})
	if err != nil {
		t.Fatalf("Rollback v2: %v", err)
	}
	if resp.RolledBackTo != 2 || resp.Version != 4 {
		t.Fatalf("rollback = %+v, want rolled_back_to=2 version=4", resp)
	}
	probProbe(t, "rollback-explicit", ensB, s.def.snap.Current().Ensemble, train.X[:16])

	// Unknown version → structured 404.
	if _, err := cli.Rollback(ctx, RollbackRequest{Version: 999}); err == nil ||
		!strings.Contains(err.Error(), "version_not_found") {
		t.Fatalf("rollback to ghost version: %v", err)
	}
	// Rolling back to the serving version → structured 400.
	if _, err := cli.Rollback(ctx, RollbackRequest{Version: 4}); err == nil ||
		!strings.Contains(err.Error(), "bad_request") {
		t.Fatalf("rollback to serving version: %v", err)
	}
	// Rollback publications persisted durably: history holds all four.
	if vs := s.snaps.Versions(DefaultModel); len(vs) != 4 {
		t.Fatalf("disk versions = %v, want 4 entries", vs)
	}
}

// TestRollbackDisabledWithoutStore pins the 501 when the server runs
// memory-only.
func TestRollbackDisabledWithoutStore(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, err := NewClient(ts.URL, 1).Rollback(context.Background(), RollbackRequest{}); err == nil ||
		!strings.Contains(err.Error(), "snapshots_disabled") {
		t.Fatalf("rollback without store: %v", err)
	}
}

// TestRollbackWorksWithOpenBreaker pins the deliberate design decision
// that rollback bypasses the retrain circuit breaker: it is the remedy
// for the failing-retrain streak that opened the breaker.
func TestRollbackWorksWithOpenBreaker(t *testing.T) {
	train, _, ensB := fixture(t)
	dir := t.TempDir()
	s := newTestServer(t, func(c *Config) { c.SnapshotDir = dir })
	s.Install(ensB, train) // v2
	for i := 0; i < s.cfg.BreakerThreshold; i++ {
		s.def.breaker.Failure()
	}
	if st := s.def.breaker.State(); st != BreakerOpen {
		t.Fatalf("breaker = %v, want open", st)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := NewClient(ts.URL, 1).Rollback(context.Background(), RollbackRequest{})
	if err != nil {
		t.Fatalf("rollback with open breaker: %v", err)
	}
	if resp.RolledBackTo != 1 {
		t.Fatalf("rolled back to v%d, want 1", resp.RolledBackTo)
	}
}

// TestEvictionReloadsFromDisk pins the satellite: an LRU-evicted model
// is transparently reloaded from its durable snapshot on the next
// request — bit-identical predictions, fresh breaker, no retrain.
func TestEvictionReloadsFromDisk(t *testing.T) {
	train, ensA, ensB := fixture(t)
	dir := t.TempDir()
	s := newTestServer(t, func(c *Config) {
		c.SnapshotDir = dir
		c.MaxModels = 1
	})
	s.InstallModel("tenant-a", ensA, train)
	// Poison tenant-a's breaker so the reload's fresh-state reset is
	// observable.
	ma := s.Model("tenant-a")
	for i := 0; i < s.cfg.BreakerThreshold; i++ {
		ma.breaker.Failure()
	}
	s.InstallModel("tenant-b", ensB, train) // evicts tenant-a
	if s.Model("tenant-a") != nil {
		t.Fatal("tenant-a still resident after eviction")
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	status, body, err := postJSON(ts.URL+"/v1/models/tenant-a/predict", PredictRequest{Rows: train.X[:8]})
	if err != nil || status != 200 {
		t.Fatalf("predict on evicted model: %d %s %v", status, body, err)
	}
	mb := s.Model("tenant-a")
	if mb == nil {
		t.Fatal("tenant-a not reloaded")
	}
	if mb == ma {
		t.Fatal("reload returned the evicted Model value; want a fresh one")
	}
	if mb.breaker.State() != BreakerClosed {
		t.Fatalf("reloaded breaker = %v, want closed (fresh state)", mb.breaker.State())
	}
	if got := mb.retrains.Load(); got != 0 {
		t.Fatalf("reload ran %d retrains, want 0", got)
	}
	probProbe(t, "evict-reload", ensA, mb.snap.Current().Ensemble, train.X[:16])

	// A name with no snapshot on disk still 404s.
	status, _, err = postJSON(ts.URL+"/v1/models/never-existed/predict", PredictRequest{Rows: train.X[:1]})
	if err != nil || status != 404 {
		t.Fatalf("ghost model: %d %v", status, err)
	}
}

// TestPersistFailureKeepsLastGood pins the degradation policy: a retrain
// that fits but cannot persist keeps serving the old snapshot, marks the
// model degraded, and counts a breaker failure — unpersisted state is
// never published. Clearing the fault and probing after the cooldown
// recovers to ready.
func TestPersistFailureKeepsLastGood(t *testing.T) {
	train, ensA, _ := fixture(t)
	dir := t.TempDir()
	clk := newFakeClock()
	inj := faultinject.New().WithSnapshotWriteFault(2, faultinject.Error)
	s := newTestServer(t, func(c *Config) {
		c.SnapshotDir = dir
		c.Fault = inj
		c.BreakerThreshold = 1
		c.BreakerCooldown = 10 * time.Second
		c.now = clk.Now
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	status, body, err := postJSON(ts.URL+"/v1/retrain", RetrainRequest{})
	if err != nil {
		t.Fatalf("retrain: %v", err)
	}
	if status != 500 || !strings.Contains(string(body), "snapshot_persist_failed") {
		t.Fatalf("retrain = %d %s, want 500 snapshot_persist_failed", status, body)
	}
	snap := s.def.snap.Current()
	if snap.Version != 1 {
		t.Fatalf("serving v%d after persist failure, want last-good v1", snap.Version)
	}
	probProbe(t, "persist-fail", ensA, snap.Ensemble, train.X[:16])
	st := s.modelStatus(s.def)
	if st.Status != "degraded" || !strings.Contains(st.DegradedReason, "persist") {
		t.Fatalf("status = %+v, want degraded with persist reason", st)
	}
	if got := s.def.breaker.State(); got != BreakerOpen {
		t.Fatalf("breaker = %v, want open (persist failure counts)", got)
	}

	// Fault cleared, cooldown elapsed: the half-open probe retrain
	// persists v2 and the model recovers to ready.
	inj.WithSnapshotWriteFault(2, faultinject.None)
	clk.Advance(11 * time.Second)
	status, body, err = postJSON(ts.URL+"/v1/retrain", RetrainRequest{})
	if err != nil || status != 200 {
		t.Fatalf("clean retrain after persist failure: %d %s %v", status, body, err)
	}
	st = s.modelStatus(s.def)
	if st.Status != "ready" || st.SnapshotVersion != 2 {
		t.Fatalf("status after clean retrain = %+v, want ready v2", st)
	}
	if got := s.def.breaker.State(); got != BreakerClosed {
		t.Fatalf("breaker = %v after probe success, want closed", got)
	}
}

// TestPersistTornWriteFallsBack drives the injected torn write: the
// failed version's torn file lands at its final path, the process keeps
// serving last-good, and a restart skips the torn file.
func TestPersistTornWriteFallsBack(t *testing.T) {
	train, ensA, ensB := fixture(t)
	dir := t.TempDir()
	inj := faultinject.New().WithSnapshotWriteFault(2, faultinject.Panic)
	s1 := newTestServer(t, func(c *Config) {
		c.SnapshotDir = dir
		c.Fault = inj
	})
	if v := s1.Install(ensB, train); v != 0 {
		t.Fatalf("torn install returned v%d, want 0 (failure)", v)
	}
	if s1.def.snap.Current().Version != 1 {
		t.Fatal("torn persist must keep serving v1")
	}
	// The torn v2 file exists on disk — recovery must skip it.
	if vs := New(Config{SnapshotDir: dir}).snaps.Versions(DefaultModel); len(vs) != 2 {
		t.Fatalf("disk versions = %v, want the torn v2 present", vs)
	}
	s2 := New(Config{AutoML: serveAutoML(11), SnapshotDir: dir})
	v, ok, err := s2.RecoverModel(context.Background(), DefaultModel)
	if err != nil || !ok || v != 1 {
		t.Fatalf("RecoverModel = %d, %v, %v; want v1", v, ok, err)
	}
	probProbe(t, "torn-fallback", ensA, s2.def.snap.Current().Ensemble, train.X[:16])
}

// TestPersistLoadFaultFallsBack drives the injected corrupt-load: the
// newest snapshot decodes as corrupt without any byte edits and recovery
// serves the prior version.
func TestPersistLoadFaultFallsBack(t *testing.T) {
	train, ensA, ensB := fixture(t)
	dir := t.TempDir()
	s1 := newTestServer(t, func(c *Config) { c.SnapshotDir = dir })
	s1.Install(ensB, train) // v2
	inj := faultinject.New().WithSnapshotLoadFault(0)
	s2 := New(Config{AutoML: serveAutoML(11), SnapshotDir: dir, Fault: inj})
	v, ok, err := s2.RecoverModel(context.Background(), DefaultModel)
	if err != nil || !ok || v != 1 {
		t.Fatalf("RecoverModel = %d, %v, %v; want fall-back to v1", v, ok, err)
	}
	probProbe(t, "load-fault", ensA, s2.def.snap.Current().Ensemble, train.X[:16])
}

// TestStatusSnapshotFields pins the status-surface satellite: version,
// durability flag and age are reported, and age ticks with the clock.
func TestStatusSnapshotFields(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	s := newTestServer(t, func(c *Config) {
		c.SnapshotDir = dir
		c.now = clk.Now
	})
	st := s.modelStatus(s.def)
	if !st.SnapshotDurable || st.SnapshotVersion != 1 || st.SnapshotAgeMS != 0 {
		t.Fatalf("status = %+v, want durable v1 age 0", st)
	}
	clk.Advance(5 * time.Second)
	if st := s.modelStatus(s.def); st.SnapshotAgeMS != 5000 {
		t.Fatalf("age = %d, want 5000", st.SnapshotAgeMS)
	}

	// Memory-only servers report not-durable and no version.
	s2 := newTestServer(t, nil)
	if st := s2.modelStatus(s2.def); st.SnapshotDurable || st.SnapshotVersion != 0 {
		t.Fatalf("memory-only status = %+v", st)
	}
}

// TestRecoverModelWithoutStore pins the no-op contract when persistence
// is disabled or nothing is on disk.
func TestRecoverModelWithoutStore(t *testing.T) {
	s := New(Config{AutoML: serveAutoML(11)})
	if v, ok, err := s.RecoverModel(context.Background(), DefaultModel); v != 0 || ok || err != nil {
		t.Fatalf("RecoverModel without store = %d, %v, %v", v, ok, err)
	}
	s2 := New(Config{AutoML: serveAutoML(11), SnapshotDir: t.TempDir()})
	if v, ok, err := s2.RecoverModel(context.Background(), DefaultModel); v != 0 || ok || err != nil {
		t.Fatalf("RecoverModel on empty store = %d, %v, %v", v, ok, err)
	}
}
