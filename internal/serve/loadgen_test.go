package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/netml/alefb/internal/testutil"
)

// TestSoakUnderLoad is the soak half of the chaos suite: a deterministic
// closed-loop load (mixed predict/ALE/regions/health) against a live
// server with a small admission queue. Every request must be answered
// with either success or a clean shed — no transport errors, no stray
// statuses — and tearing the server down afterwards must leak nothing.
func TestSoakUnderLoad(t *testing.T) {
	defer testutil.LeakCheck(t)()
	s := newTestServer(t, func(c *Config) {
		c.MaxInFlight = 4
		c.MaxQueue = 4
	})
	ts := httptest.NewServer(s.Handler())

	report, err := RunLoad(context.Background(), LoadConfig{
		Base:        ts.URL,
		Concurrency: 8,
		Requests:    200,
		Rows:        8,
		Seed:        42,
		Timeout:     30 * time.Second,
	})
	ts.Close()
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests != 200 {
		t.Fatalf("issued %d requests, want 200", report.Requests)
	}
	if report.TransportErrors != 0 {
		t.Fatalf("%d transport errors under soak", report.TransportErrors)
	}
	total := 0
	for status, n := range report.ByStatus {
		total += n
		switch status {
		case http.StatusOK, http.StatusTooManyRequests:
		default:
			t.Fatalf("unexpected status %d (%d times) under soak:\n%s", status, n, report)
		}
	}
	if total != 200 {
		t.Fatalf("statuses account for %d of 200:\n%s", total, report)
	}
	if report.ByStatus[http.StatusOK] == 0 {
		t.Fatalf("no successes under soak:\n%s", report)
	}
	if report.ByKind["predict"] == 0 || report.ByKind["health"] == 0 {
		t.Fatalf("mix did not exercise all kinds:\n%s", report)
	}
}

// TestLoadMixDeterministic checks the generator side: with a fixed seed
// the per-worker request-kind sequence is reproducible.
func TestLoadMixDeterministic(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	run := func() map[string]int {
		report, err := RunLoad(context.Background(), LoadConfig{
			Base: ts.URL, Concurrency: 1, Requests: 40, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return report.ByKind
	}
	a, b := run(), run()
	for k, n := range a {
		if b[k] != n {
			t.Fatalf("kind mix diverged for seed 7: %v vs %v", a, b)
		}
	}
}

// TestLoadMultiTenant drives load across named tenants and checks the
// per-tenant breakdown: every configured model gets traffic, the
// per-tenant request counts sum to the non-health total, and each tenant
// carries its own latency percentiles and status histogram.
func TestLoadMultiTenant(t *testing.T) {
	defer testutil.LeakCheck(t)()
	train, _, ensB := fixture(t)
	s := newTestServer(t, nil)
	s.InstallModel("tenant-b", ensB, train)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	report, err := RunLoad(context.Background(), LoadConfig{
		Base:        ts.URL,
		Concurrency: 4,
		Requests:    120,
		Rows:        4,
		Seed:        9,
		Models:      []string{DefaultModel, "tenant-b"},
		Timeout:     30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.PerTenant) != 2 {
		t.Fatalf("PerTenant has %d entries, want 2:\n%s", len(report.PerTenant), report)
	}
	tenantTotal := 0
	for name, st := range report.PerTenant {
		if st.Requests == 0 {
			t.Fatalf("tenant %s got no traffic:\n%s", name, report)
		}
		if st.ByStatus[http.StatusOK] == 0 {
			t.Fatalf("tenant %s has no successes:\n%s", name, report)
		}
		if st.P50 <= 0 || st.MaxMS < st.P99 {
			t.Fatalf("tenant %s percentiles inconsistent: %+v", name, st)
		}
		tenantTotal += st.Requests
	}
	if want := report.Requests - report.ByKind["health"]; tenantTotal != want {
		t.Fatalf("per-tenant requests sum to %d, want %d (non-health total)", tenantTotal, want)
	}
}

// TestLoadSingleTenantReportsDefault: without a Models list, the whole
// run is attributed to the default tenant so report consumers always see
// a per-tenant section.
func TestLoadSingleTenantReportsDefault(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	report, err := RunLoad(context.Background(), LoadConfig{
		Base: ts.URL, Concurrency: 2, Requests: 30, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := report.PerTenant[DefaultModel]
	if st == nil || st.Requests == 0 {
		t.Fatalf("default tenant stats missing:\n%s", report)
	}
}

func TestLoadFailsFastWithoutServer(t *testing.T) {
	_, err := RunLoad(context.Background(), LoadConfig{
		Base: "http://127.0.0.1:1", Requests: 5, Timeout: time.Second,
	})
	if err == nil {
		t.Fatal("expected schema fetch failure against a dead server")
	}
}
