package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/core"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/rng"
)

// serveProblem is the confusable-band dataset the rest of the repo tests
// on: x0 decides the class, with a noisy band in the middle where models
// legitimately disagree.
func serveProblem(n int, seed uint64) *data.Dataset {
	schema := &data.Schema{
		Features: []data.Feature{
			{Name: "x0", Min: 0, Max: 1},
			{Name: "x1", Min: 0, Max: 1},
		},
		Classes: []string{"no", "yes"},
	}
	r := rng.New(seed)
	d := data.New(schema)
	for i := 0; i < n; i++ {
		x0, x1 := r.Float64(), r.Float64()
		var y int
		switch {
		case x0 < 0.4:
			y = 0
		case x0 > 0.6:
			y = 1
		default:
			y = r.Intn(2)
		}
		d.Append([]float64{x0, x1}, y)
	}
	return d
}

func serveAutoML(seed uint64) automl.Config {
	return automl.Config{MaxCandidates: 5, Generations: 1, EnsembleSize: 4, Seed: seed}
}

var (
	fixOnce  sync.Once
	fixTrain *data.Dataset
	fixEnsA  *automl.Ensemble
	fixEnsB  *automl.Ensemble
	fixErr   error
)

// fixture trains the shared test models exactly once per test binary: a
// training set and two ensembles from different seeds (so snapshot-swap
// tests can tell the two apart by their predictions).
func fixture(t *testing.T) (*data.Dataset, *automl.Ensemble, *automl.Ensemble) {
	t.Helper()
	fixOnce.Do(func() {
		fixTrain = serveProblem(200, 1)
		ctx := context.Background()
		if fixEnsA, fixErr = automl.RunCtx(ctx, fixTrain, serveAutoML(11)); fixErr != nil {
			return
		}
		fixEnsB, fixErr = automl.RunCtx(ctx, fixTrain, serveAutoML(77))
	})
	if fixErr != nil {
		t.Fatalf("fixture training failed: %v", fixErr)
	}
	return fixTrain, fixEnsA, fixEnsB
}

// newTestServer builds a Server with the fixture model installed and fast
// test-friendly defaults; mutate returns the final config.
func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	train, ens, _ := fixture(t)
	cfg := Config{
		AutoML:         serveAutoML(11),
		Feedback:       core.Config{Bins: 16},
		RequestTimeout: 5 * time.Second,
		RetrainTimeout: 30 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s := New(cfg)
	s.Install(ens, train)
	return s
}
