// Package serve is the network-facing front end of the interpretable
// feedback system: a stdlib-only HTTP service exposing batch prediction,
// ALE interpretation, disagreement regions and operator-triggered
// retraining over the hardened execution layer.
//
// Robustness is the design headline, mirroring the degradation policy of
// core.RunLoopCtx one layer up:
//
//   - Reads always hit the last-good snapshot. Each model's served
//     ensemble, training data and version live in one immutable Snapshot
//     behind an atomic pointer; a retrain builds a complete replacement
//     off to the side and publishes it with a single store, so a failed
//     or in-flight retrain can never tear or taint what /v1/predict sees.
//   - Load is shed, not queued. A bounded admission queue fronts every
//     /v1 endpoint; once it is full the server answers 429 with
//     Retry-After instead of stacking goroutines.
//   - Failures are isolated and structured. Handler panics are recovered
//     into *parallel.PanicError and rendered as JSON error envelopes; a
//     5xx without a machine-readable body is a bug the chaos suite hunts.
//   - Retrains degrade, never corrupt — per tenant. A failed retrain
//     keeps that model's previous snapshot, marks it degraded (surfaced
//     in /readyz and /v1/models exactly like LoopResult.Degraded), and
//     feeds that model's own circuit breaker. No other tenant notices.
//   - Shutdown drains. The server stops accepting connections and waits
//     for in-flight requests; the chaos suite checks zero goroutines leak.
//
// Scale is the second headline. The server is multi-tenant — a model
// registry routes /v1/models/{model}/... to independently versioned,
// independently breakered models with LRU eviction of cold tenants —
// and the predict path runs through a request-coalescing micro-batch
// scheduler: concurrent /v1/predict requests are merged into one
// member-major flat-engine sweep over pooled scratch arenas and split
// back per request, bit-identical to the per-request path (see batcher.go).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/core"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/faultinject"
	"github.com/netml/alefb/internal/interpret"
	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/modelstore"
	"github.com/netml/alefb/internal/parallel"
)

// Config controls one Server.
type Config struct {
	// AutoML is the search configuration used by Bootstrap and every
	// retrain. Retrain requests may override Seed and MaxCandidates.
	AutoML automl.Config
	// Feedback is the base configuration for /v1/ale and /v1/regions
	// (method, grid resolution, workers). Requests may override Bins and
	// Threshold.
	Feedback core.Config
	// MaxInFlight bounds concurrently executing /v1 requests (default 64).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot; arrivals
	// beyond it are shed with 429 (default 2*MaxInFlight).
	MaxQueue int
	// RequestTimeout is the per-request deadline for read endpoints
	// (default 10s). /v1/retrain is exempt: its only deadline is
	// RetrainTimeout.
	RequestTimeout time.Duration
	// RetrainTimeout is the per-attempt deadline for /v1/retrain
	// (default 5m). A retrain that exceeds it fails like any other
	// retrain failure: last-good keeps serving, the breaker counts it.
	RetrainTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxBatchRows bounds the rows of one predict/retrain request and of
	// one coalesced scheduler batch (default 4096).
	MaxBatchRows int
	// MaxBatchDelay bounds how long the batch leader waits for predicts
	// that registered interest but have not joined yet (default 2ms).
	// Isolated requests never wait it out: the scheduler flushes as soon
	// as every in-flight predict has joined the batch.
	MaxBatchDelay time.Duration
	// PredictWorkers sets the worker count of one coalesced sweep
	// (0 = GOMAXPROCS). Results are bit-identical at any setting.
	PredictWorkers int
	// DisableCoalescing routes /v1/predict through the legacy
	// per-request sweep instead of the micro-batch scheduler. It exists
	// as the recorded baseline for BENCH_SERVE.json and as an escape
	// hatch; responses are bit-identical either way.
	DisableCoalescing bool
	// MaxModels bounds the named (non-default) models the registry holds
	// before LRU-evicting the coldest (default 8).
	MaxModels int
	// BreakerThreshold is the consecutive retrain failures that trip a
	// model's circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker sheds retrains
	// before half-opening a probe (default 30s).
	BreakerCooldown time.Duration
	// FeedbackDir is the base directory for the per-model durable
	// feedback stores (<FeedbackDir>/<model name>). Empty selects
	// memory-only stores: ingestion and drift monitoring still work, but
	// nothing survives a restart.
	FeedbackDir string
	// DriftWindow is how many of the most recent feedback rows the drift
	// monitor analyses after each ingest (default 64).
	DriftWindow int
	// DriftThreshold is the Cross-ALE disagreement level over the window
	// that triggers a background retrain. 0 disables the drift monitor;
	// ingestion alone never retrains.
	DriftThreshold float64
	// DriftEvalEvery spaces the drift monitor's evaluation gates: the
	// off-path evaluator analyses the window when the acknowledged record
	// sequence crosses a multiple of this many rows, coalescing ingest
	// bursts into one evaluation at the newest gate (default 1 —
	// evaluate-at-every-batch, matching the seed's per-ingest cadence of
	// sequence points).
	DriftEvalEvery int
	// SyncDriftEval restores the seed behavior of evaluating drift
	// inline on the ingest request path, under the request context.
	// It exists as the determinism oracle for the off-path evaluator
	// and as the benchmark baseline; production keeps it false.
	SyncDriftEval bool
	// DisableInterpCache turns off the snapshot-keyed interpretation
	// cache so every /v1/ale and /v1/regions request recomputes from
	// scratch (the seed behavior); benchmark baseline and escape hatch.
	DisableInterpCache bool
	// FeedbackCompactEvery overrides the stores' WAL-records-per-
	// checkpoint compaction interval (0 keeps the store default).
	FeedbackCompactEvery int
	// SnapshotDir is the root directory of the durable model snapshot
	// store (<SnapshotDir>/<model name>/v*.snap). Empty disables
	// persistence: models live only behind the atomic pointer and a
	// restart retrains from scratch, the pre-durability behavior.
	SnapshotDir string
	// SnapshotRetain is how many snapshot versions each model keeps on
	// disk (0 selects the store default of 4, negative keeps all).
	SnapshotRetain int
	// DriftShiftTolerance and DriftMaxRefitFraction tune the warm-start
	// retrain path (zero keeps the core defaults): members whose mean ALE
	// delta exceeds the tolerance are refitted, and past the fraction the
	// retrain falls back to a full AutoML search.
	DriftShiftTolerance   float64
	DriftMaxRefitFraction float64
	// Log, when non-nil, receives one line per notable server event
	// (publishes, degradations, evictions, recovered panics).
	Log io.Writer
	// Fault is the test-only fault injector; nil injects nothing.
	Fault *faultinject.Injector

	// now is the clock used by the breakers and uptime reporting;
	// tests override it. nil means time.Now.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxInFlight
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.RetrainTimeout <= 0 {
		c.RetrainTimeout = 5 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatchRows <= 0 {
		c.MaxBatchRows = 4096
	}
	if c.MaxBatchDelay <= 0 {
		c.MaxBatchDelay = 2 * time.Millisecond
	}
	if c.MaxModels <= 0 {
		c.MaxModels = 8
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.DriftWindow <= 0 {
		c.DriftWindow = 64
	}
	if c.DriftEvalEvery <= 0 {
		c.DriftEvalEvery = 1
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Server is the HTTP inference/feedback service.
type Server struct {
	cfg    Config
	models *modelRegistry
	def    *Model
	admit  *admission

	// seq numbers /v1 requests in admission order; it keys the HTTP
	// fault-injection points.
	seq atomic.Int64

	// retrainWG tracks drift-triggered background retrains; Shutdown
	// waits for it so the goroutine-leak checks stay honest. retrainCtx
	// is their base context, canceled by Shutdown after the HTTP drain.
	retrainWG     sync.WaitGroup
	retrainCtx    context.Context
	retrainCancel context.CancelFunc

	// snaps is the durable model snapshot store, nil when SnapshotDir is
	// empty (persistence disabled).
	snaps *modelstore.Store
	// reloadMu single-flights disk reloads of evicted models, so a
	// thundering herd of requests for a cold name decodes the snapshot
	// once.
	reloadMu sync.Mutex

	started time.Time
	handler http.Handler
	httpSrv *http.Server
}

// New builds a Server. The service starts without any snapshot: /healthz
// answers immediately, /readyz and the /v1 endpoints report unavailable
// until Bootstrap or Install publishes a model.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		models:  newModelRegistry(cfg.MaxModels),
		admit:   newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		started: cfg.now(),
	}
	s.retrainCtx, s.retrainCancel = context.WithCancel(context.Background())
	if cfg.SnapshotDir != "" {
		s.snaps = modelstore.New(modelstore.Config{
			Dir:    cfg.SnapshotDir,
			Retain: cfg.SnapshotRetain,
			Fault:  cfg.Fault,
		})
	}
	s.def, _ = s.models.getOrCreate(DefaultModel, func() *Model {
		m := s.newModel()
		m.pinned = true
		return m
	})
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.guard(false, 0, s.handleHealthz))
	mux.Handle("GET /readyz", s.guard(false, 0, s.handleReadyz))
	mux.Handle("GET /v1/models", s.guard(true, cfg.RequestTimeout, s.handleModels))
	mux.Handle("GET /v1/schema", s.guard(true, cfg.RequestTimeout, s.onDefault(s.handleSchema)))
	mux.Handle("POST /v1/predict", s.guard(true, cfg.RequestTimeout, s.onDefault(s.handlePredict)))
	mux.Handle("POST /v1/ale", s.guard(true, cfg.RequestTimeout, s.onDefault(s.handleALE)))
	mux.Handle("POST /v1/regions", s.guard(true, cfg.RequestTimeout, s.onDefault(s.handleRegions)))
	mux.Handle("POST /v1/feedback", s.guard(true, cfg.RequestTimeout, s.onDefault(s.handleFeedback)))
	mux.Handle("GET /v1/status", s.guard(true, cfg.RequestTimeout, s.onDefault(s.handleModelStatus)))
	mux.Handle("GET /v1/models/{model}/schema", s.guard(true, cfg.RequestTimeout, s.onNamed(s.handleSchema)))
	mux.Handle("POST /v1/models/{model}/feedback", s.guard(true, cfg.RequestTimeout, s.onNamed(s.handleFeedback)))
	mux.Handle("GET /v1/models/{model}/status", s.guard(true, cfg.RequestTimeout, s.onNamed(s.handleModelStatus)))
	mux.Handle("POST /v1/models/{model}/predict", s.guard(true, cfg.RequestTimeout, s.onNamed(s.handlePredict)))
	mux.Handle("POST /v1/models/{model}/ale", s.guard(true, cfg.RequestTimeout, s.onNamed(s.handleALE)))
	mux.Handle("POST /v1/models/{model}/regions", s.guard(true, cfg.RequestTimeout, s.onNamed(s.handleRegions)))
	// Retrain is the one slow mutating endpoint: its deadline is
	// RetrainTimeout, applied inside handleRetrain, so the read-path
	// RequestTimeout must not wrap it (a 5m search under a 10s parent
	// deadline would always fail and falsely trip the breaker).
	mux.Handle("POST /v1/retrain", s.guard(true, 0, s.onDefault(s.handleRetrain)))
	mux.Handle("POST /v1/models/{model}/retrain", s.guard(true, 0, s.onNamed(s.handleRetrain)))
	// Rollback re-points serving to an already-fitted prior snapshot: no
	// search runs, so the read-path RequestTimeout is the right deadline.
	mux.Handle("POST /v1/rollback", s.guard(true, cfg.RequestTimeout, s.onDefault(s.handleRollback)))
	mux.Handle("POST /v1/models/{model}/rollback", s.guard(true, cfg.RequestTimeout, s.onNamed(s.handleRollback)))
	s.handler = mux
	s.httpSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	return s
}

// newModel builds an empty Model wired to this server's config.
func (s *Server) newModel() *Model {
	m := &Model{
		breaker: NewBreaker(s.cfg.BreakerThreshold, s.cfg.BreakerCooldown, s.cfg.now),
	}
	m.batcher = newBatcher(s.cfg.MaxBatchRows, s.cfg.MaxBatchDelay, s.cfg.PredictWorkers,
		s.cfg.Fault, m.snap.Current)
	return m
}

// Bootstrap trains the initial ensemble on train and publishes snapshot
// version 1 of the default model. Like round 1 of core.RunLoopCtx, a
// bootstrap failure is fatal — there is no previous state to degrade to.
func (s *Server) Bootstrap(ctx context.Context, train *data.Dataset) error {
	return s.BootstrapModel(ctx, DefaultModel, train)
}

// BootstrapModel trains and publishes the named model's first snapshot,
// creating the model (and possibly evicting the coldest) on success.
// When a durable feedback store exists for the name, its replayed rows
// are folded into the training set before the search, so a restart
// trains on exactly the data the previous process had acknowledged —
// the crash-recovery half of the always-on loop.
func (s *Server) BootstrapModel(ctx context.Context, name string, train *data.Dataset) error {
	if err := validModelName(name); err != nil {
		return fmt.Errorf("serve: bootstrap: %w", err)
	}
	m, evicted := s.models.getOrCreate(name, s.newModel)
	if evicted != nil {
		evicted.closeFeedback()
		s.logf("serve: evicted cold model %q (v%d) for %q", evicted.name, evicted.snap.NextVersion()-1, name)
	}
	st, err := s.feedbackStore(m)
	if err != nil {
		return fmt.Errorf("serve: bootstrap %s: %w", name, err)
	}
	var folded int64
	if n := st.Len(); n > 0 {
		rows, labels := st.Rows()
		train = train.Clone()
		for i, row := range rows {
			if err := train.AppendRow(row, labels[i]); err != nil {
				return fmt.Errorf("serve: bootstrap %s: replayed feedback row %d: %w", name, i, err)
			}
		}
		folded = int64(n)
		s.logf("serve: model %q folded %d replayed feedback rows into bootstrap", name, n)
	}
	ens, err := automl.RunCtx(ctx, train, s.cfg.AutoML)
	if err != nil {
		return fmt.Errorf("serve: bootstrap %s: %w", name, err)
	}
	// A bootstrap that cannot persist is fatal like a bootstrap that
	// cannot train: there is no previous durable state to fall back to,
	// and acknowledging an unpersistable model would silently revert to
	// the retrain-on-every-restart behavior durability exists to end.
	if _, err := s.install(m, ens, train, folded, s.cfg.AutoML.Seed); err != nil {
		return fmt.Errorf("serve: bootstrap %s: %w", name, err)
	}
	return nil
}

// Install publishes a ready-made ensemble and its training data as the
// default model's next snapshot, clearing any degraded state, and
// returns the new version. It is the programmatic publish path for
// tools and tests that train out-of-process.
func (s *Server) Install(ens *automl.Ensemble, train *data.Dataset) int64 {
	return s.InstallModel(DefaultModel, ens, train)
}

// InstallModel publishes a snapshot under the given model name, creating
// the model if needed. Creating a model beyond MaxModels evicts the
// least-recently-used non-default model; requests already holding the
// evicted model finish on their loaded snapshot, later lookups get 404.
func (s *Server) InstallModel(name string, ens *automl.Ensemble, train *data.Dataset) int64 {
	m, evicted := s.models.getOrCreate(name, s.newModel)
	if evicted != nil {
		evicted.closeFeedback()
		s.logf("serve: evicted cold model %q (v%d) for %q", evicted.name, evicted.snap.NextVersion()-1, name)
	}
	v, err := s.install(m, ens, train, 0, s.cfg.AutoML.Seed)
	if err != nil {
		s.logf("serve: model %q install failed: %v", name, err)
		return 0
	}
	return v
}

// install publishes the next snapshot of m and clears its degraded
// state. feedbackRows records how many feedback-store rows train already
// folds in (see Snapshot.FeedbackRows); seed is recorded in the durable
// snapshot so recovery can reproduce the fit's provenance.
//
// Durability ordering is the core of the crash-safety contract: the
// snapshot is persisted BEFORE the atomic pointer swap, so a model that
// was ever served is on disk at its exact served bytes — a crash at any
// later instant recovers it without retraining. A persist failure
// publishes nothing: the previous snapshot keeps serving and the model
// is marked degraded, the same last-good policy as a failed retrain.
func (s *Server) install(m *Model, ens *automl.Ensemble, train *data.Dataset, feedbackRows int64, seed uint64) (int64, error) {
	next := &Snapshot{
		Ensemble:     ens,
		Train:        train,
		Version:      m.snap.NextVersion(),
		ValScore:     ens.ValScore,
		FeedbackRows: feedbackRows,
	}
	if err := s.persist(m, next, seed); err != nil {
		if cur := m.snap.Current(); cur != nil {
			reason := fmt.Sprintf("snapshot persist failed: %v", err)
			m.degraded.Store(&reason)
			s.logf("serve: model %q degraded, keeping snapshot v%d: %s", m.name, cur.Version, reason)
		}
		return 0, fmt.Errorf("persist snapshot v%d: %w", next.Version, err)
	}
	m.snap.Publish(next)
	m.degraded.Store(nil)
	s.logf("serve: model %q published snapshot v%d (%d members, val %.3f, %d rows)",
		m.name, next.Version, len(ens.Members), ens.ValScore, train.Len())
	return next.Version, nil
}

// Model returns the named model, or nil. Intended for tests and tools.
func (s *Server) Model(name string) *Model { return s.models.lookup(name) }

// Handler returns the root handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.handler }

// Serve accepts connections on l until Shutdown. It returns nil after a
// clean shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.httpSrv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown gracefully stops the server: no new connections are accepted,
// in-flight requests are drained until ctx expires, background drift
// retrains are canceled and waited for, each model's snapshot is flushed
// up to date (folding any feedback rows ingested since the last persist,
// so a clean stop + restart replays nothing and never retrains), and
// every model's feedback store is closed (all acknowledged rows are
// already fsynced, so closing loses nothing).
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.httpSrv.Shutdown(ctx)
	s.retrainCancel()
	s.retrainWG.Wait()
	for _, m := range s.models.list() {
		if ferr := s.flushSnapshot(m); ferr != nil {
			// The WAL still holds the unflushed rows; recovery replays
			// them, so a failed flush costs replay time, not data.
			s.logf("serve: model %q shutdown snapshot flush failed: %v", m.name, ferr)
		}
		m.closeFeedback()
	}
	return err
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, format+"\n", args...)
	}
}

// --- error envelope -------------------------------------------------------

// ErrorDetail is the machine-readable error payload. Code is a stable
// short string clients can switch on; Message is human-readable.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Status  int    `json:"status"`
}

// ErrorBody is the JSON envelope of every non-2xx /v1 response: the
// structured-error invariant the chaos suite enforces.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorBody{Error: ErrorDetail{Code: code, Message: msg, Status: status}})
}

// statusWriter records whether a handler already wrote, so the panic
// middleware knows whether a structured 500 can still be sent.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.wrote, w.status = true, code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.wrote, w.status = true, http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the wrapped writer's Flusher so streaming handlers
// work through guard. A flush commits the response like a Write: after
// it, the panic middleware can no longer send a structured 500.
func (w *statusWriter) Flush() {
	f, ok := w.ResponseWriter.(http.Flusher)
	if !ok {
		return
	}
	if !w.wrote {
		w.wrote, w.status = true, http.StatusOK
	}
	f.Flush()
}

// Unwrap exposes the wrapped writer to http.ResponseController, giving
// handlers the optional interfaces (Hijacker, deadline setters) this
// wrapper does not re-implement.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// --- middleware -----------------------------------------------------------

// guard wraps a handler with the protection chain. Every handler gets
// panic isolation and a body-size limit; admitted (/v1) handlers
// additionally get a sequence number, fault-injection points, bounded
// admission with load shedding, and — when timeout is non-zero — a
// per-request deadline. Retrain passes timeout 0 and applies its own
// RetrainTimeout instead. Health endpoints bypass admission so readiness
// stays observable under overload — exactly when an operator needs it.
func (s *Server) guard(admitted bool, timeout time.Duration, h func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if v := recover(); v != nil {
				perr := &parallel.PanicError{Value: v, Stack: debug.Stack()}
				s.logf("serve: panic in %s %s: %v", r.Method, r.URL.Path, perr.Value)
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, "panic",
						fmt.Sprintf("handler panicked: %v", perr.Value))
				}
			}
		}()
		r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		if admitted {
			seq := int(s.seq.Add(1) - 1)
			switch s.cfg.Fault.HTTPFault(seq) {
			case faultinject.Panic:
				panic(fmt.Sprintf("faultinject: injected handler panic (seq %d)", seq))
			case faultinject.Error:
				writeError(sw, http.StatusInternalServerError, "injected",
					fmt.Sprintf("faultinject: injected 5xx (seq %d)", seq))
				return
			}
			ok, shed := s.admit.acquire(r.Context())
			if shed {
				sw.Header().Set("Retry-After", "1")
				writeError(sw, http.StatusTooManyRequests, "overloaded",
					fmt.Sprintf("admission queue full (%d in flight, %d queued)",
						s.admit.inFlight(), s.admit.queued()))
				return
			}
			if !ok {
				// Client went away while queued; nothing useful to write.
				return
			}
			defer s.admit.release()
			// Injected latency models slow handler work, so it runs while
			// holding the admission slot — that's what lets the chaos suite
			// fill the queue deterministically.
			if d := s.cfg.Fault.HTTPLatency(seq); d > 0 {
				time.Sleep(d)
			}
			if timeout > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), timeout)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		h(sw, r)
	})
}

// modelHandler is an endpoint bound to one resolved tenant.
type modelHandler func(w http.ResponseWriter, r *http.Request, m *Model)

// onDefault binds a model handler to the pinned default model, serving
// the unprefixed /v1 routes unchanged from the single-tenant days.
func (s *Server) onDefault(h modelHandler) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) { h(w, r, s.def) }
}

// onNamed resolves {model} from the route against the registry. An
// unknown (or evicted) name with a durable snapshot on disk is reloaded
// transparently — eviction sheds memory, not tenants; a name with no
// snapshot either is the client's 404. Resolution also touches the
// model's LRU tick, which is what keeps hot tenants alive.
func (s *Server) onNamed(h modelHandler) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("model")
		m := s.models.lookup(name)
		if m == nil {
			m = s.reloadFromDisk(r.Context(), name)
		}
		if m == nil {
			writeError(w, http.StatusNotFound, "model_not_found",
				fmt.Sprintf("no model named %q is loaded", name))
			return
		}
		h(w, r, m)
	}
}

// decodeJSON reads and decodes the request body, writing the appropriate
// structured error (413 for oversized bodies, 400 otherwise) on failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
		} else {
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		}
		return false
	}
	return true
}

// currentSnapshot loads m's published snapshot or writes the 503
// unavailable envelope (with Retry-After: the model may just be
// bootstrapping).
func currentSnapshot(w http.ResponseWriter, m *Model) (*Snapshot, bool) {
	snap := m.snap.Current()
	if snap == nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "unavailable", "no model snapshot published yet")
		return nil, false
	}
	return snap, true
}

// --- health ---------------------------------------------------------------

// HealthResponse is the /healthz payload: process liveness only.
type HealthResponse struct {
	Status   string `json:"status"`
	UptimeMS int64  `json:"uptime_ms"`
	Requests int64  `json:"requests"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:   "ok",
		UptimeMS: s.cfg.now().Sub(s.started).Milliseconds(),
		Requests: s.seq.Load(),
	})
}

// ModelStatus is one model's entry in /readyz and /v1/models: its
// serving state plus the micro-batch scheduler's counters (batches
// executed, requests coalesced into them, rows swept, timer-deadline
// flushes) — the scheduler's behavior is part of the observable API, per
// the transparency argument the suite tests against.
type ModelStatus struct {
	Name           string  `json:"name"`
	Status         string  `json:"status"`
	Version        int64   `json:"version"`
	Members        int     `json:"members"`
	ValScore       float64 `json:"val_score"`
	TrainRows      int     `json:"train_rows"`
	Breaker        string  `json:"breaker"`
	DegradedReason string  `json:"degraded_reason,omitempty"`
	Batches        int64   `json:"batches"`
	BatchedReqs    int64   `json:"batched_requests"`
	RowsSwept      int64   `json:"rows_swept"`
	TimerFlushes   int64   `json:"timer_flushes"`

	// Feedback/drift state of the always-on loop. FeedbackRows is the
	// store's acknowledged row count, FoldedRows how many of those the
	// served snapshot was trained on; WALRecords is the log length since
	// the last checkpoint compaction. DriftStd/DriftFeature echo the most
	// recent sliding-window evaluation, RetrainState is "running" while a
	// drift-triggered retrain is in flight and "idle" otherwise.
	FeedbackRows    int     `json:"feedback_rows"`
	FoldedRows      int64   `json:"folded_feedback_rows"`
	WALRecords      int     `json:"wal_records"`
	FeedbackDurable bool    `json:"feedback_durable"`
	DriftStd        float64 `json:"drift_std"`
	DriftFeature    string  `json:"drift_feature,omitempty"`
	Drifted         bool    `json:"drifted"`
	DriftThreshold  float64 `json:"drift_threshold"`
	DriftWindow     int     `json:"drift_window"`
	RetrainState    string  `json:"retrain_state"`
	DriftRetrains   int64   `json:"drift_retrains"`

	// Off-path drift evaluator state. DriftEvalSeq is the record
	// sequence of the newest completed evaluation, DriftEvals how many
	// have completed, DriftEvalsCoalesced how many gate crossings were
	// folded into a newer capture instead of evaluated individually, and
	// DriftEvalMSTotal the cumulative evaluation wall time (all zero in
	// SyncDriftEval mode or before the first monitored ingest).
	DriftEvalSeq        int64 `json:"drift_eval_seq,omitempty"`
	DriftEvals          int64 `json:"drift_evals,omitempty"`
	DriftEvalsCoalesced int64 `json:"drift_evals_coalesced,omitempty"`
	DriftEvalMSTotal    int64 `json:"drift_eval_ms_total,omitempty"`
	DriftEvalEvery      int   `json:"drift_eval_every"`

	// Interpretation-cache counters for the currently cached snapshot
	// (response memos plus the shared committee-curve cache). They reset
	// on every snapshot publish, when the whole cache is invalidated.
	InterpCacheHits   int64 `json:"interp_cache_hits"`
	InterpCacheMisses int64 `json:"interp_cache_misses"`

	// Durable-snapshot state. SnapshotVersion is the newest persisted
	// version (0 while nothing is on disk or persistence is disabled),
	// SnapshotAgeMS how long ago it was written, and SnapshotDurable
	// whether a snapshot store is configured at all.
	SnapshotVersion int64 `json:"snapshot_version,omitempty"`
	SnapshotAgeMS   int64 `json:"snapshot_age_ms,omitempty"`
	SnapshotDurable bool  `json:"snapshot_durable"`
}

// status summarizes one model for the status endpoints.
func (m *Model) status() ModelStatus {
	st := ModelStatus{
		Name:         m.name,
		Status:       "unavailable",
		Breaker:      m.breaker.State().String(),
		Batches:      m.batcher.batches.Load(),
		BatchedReqs:  m.batcher.batchedReqs.Load(),
		RowsSwept:    m.batcher.rowsSwept.Load(),
		TimerFlushes: m.batcher.timerFlushes.Load(),
		RetrainState: "idle",
	}
	if m.retraining.Load() {
		st.RetrainState = "running"
	}
	st.DriftRetrains = m.driftRetrains.Load()
	if d := m.drift.Load(); d != nil {
		st.DriftStd = d.Std
		st.DriftFeature = d.Feature
		st.Drifted = d.Drifted
	}
	m.driftEvalMu.Lock()
	ev := m.driftEval
	m.driftEvalMu.Unlock()
	if ev != nil {
		st.DriftEvalSeq = ev.evalSeq.Load()
		st.DriftEvals = ev.evals.Load()
		st.DriftEvalsCoalesced = ev.coalesced.Load()
		st.DriftEvalMSTotal = ev.evalNanos.Load() / 1e6
	}
	if ist := m.interp.Load(); ist != nil {
		st.InterpCacheHits, st.InterpCacheMisses = ist.stats()
	}
	m.fbMu.Lock()
	if m.fb != nil {
		st.FeedbackRows = m.fb.Len()
		st.WALRecords = m.fb.WALRecords()
		st.FeedbackDurable = m.fb.Durable()
	}
	m.fbMu.Unlock()
	snap := m.snap.Current()
	if snap == nil {
		return st
	}
	st.Status = "ready"
	if reason := m.degraded.Load(); reason != nil {
		st.Status = "degraded"
		st.DegradedReason = *reason
	}
	st.Version = snap.Version
	st.Members = len(snap.Ensemble.Members)
	st.ValScore = snap.ValScore
	st.TrainRows = snap.Train.Len()
	st.FoldedRows = snap.FeedbackRows
	return st
}

// modelStatus is status plus the server-level drift configuration and
// the durable-snapshot state.
func (s *Server) modelStatus(m *Model) ModelStatus {
	st := m.status()
	st.DriftThreshold = s.cfg.DriftThreshold
	st.DriftWindow = s.cfg.DriftWindow
	st.DriftEvalEvery = s.cfg.DriftEvalEvery
	st.SnapshotDurable = s.snaps != nil
	if meta := m.snapMeta.Load(); meta != nil {
		st.SnapshotVersion = meta.Version
		st.SnapshotAgeMS = s.cfg.now().UnixMilli() - meta.SavedAtMS
	}
	return st
}

// ReadyResponse is the /readyz payload. The top-level fields report the
// default model — unchanged from the single-tenant API — while Models
// lists every loaded tenant. Status is "ready" when the default model
// serves a current snapshot, "degraded" when it serves a stale last-good
// snapshot after a failed retrain (DegradedReason says why), and
// "unavailable" (with HTTP 503) before any snapshot exists.
type ReadyResponse struct {
	Status         string        `json:"status"`
	Version        int64         `json:"version"`
	Members        int           `json:"members"`
	ValScore       float64       `json:"val_score"`
	TrainRows      int           `json:"train_rows"`
	Breaker        string        `json:"breaker"`
	DegradedReason string        `json:"degraded_reason,omitempty"`
	InFlight       int           `json:"in_flight"`
	Queued         int           `json:"queued"`
	Models         []ModelStatus `json:"models,omitempty"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	def := s.modelStatus(s.def)
	resp := ReadyResponse{
		Status:         def.Status,
		Version:        def.Version,
		Members:        def.Members,
		ValScore:       def.ValScore,
		TrainRows:      def.TrainRows,
		Breaker:        def.Breaker,
		DegradedReason: def.DegradedReason,
		InFlight:       s.admit.inFlight(),
		Queued:         s.admit.queued(),
	}
	for _, m := range s.models.list() {
		resp.Models = append(resp.Models, s.modelStatus(m))
	}
	if resp.Status == "unavailable" {
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// ModelsResponse is the /v1/models payload.
type ModelsResponse struct {
	Models []ModelStatus `json:"models"`
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	resp := ModelsResponse{Models: []ModelStatus{}}
	for _, m := range s.models.list() {
		resp.Models = append(resp.Models, s.modelStatus(m))
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- schema ---------------------------------------------------------------

// SchemaFeature describes one input feature to clients (loadgen samples
// rows from these ranges).
type SchemaFeature struct {
	Name    string  `json:"name"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Integer bool    `json:"integer"`
}

// SchemaResponse is the /v1/schema payload.
type SchemaResponse struct {
	Version  int64           `json:"version"`
	Features []SchemaFeature `json:"features"`
	Classes  []string        `json:"classes"`
}

func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request, m *Model) {
	snap, ok := currentSnapshot(w, m)
	if !ok {
		return
	}
	resp := SchemaResponse{Version: snap.Version, Classes: snap.Train.Schema.Classes}
	for _, f := range snap.Train.Schema.Features {
		resp.Features = append(resp.Features, SchemaFeature{Name: f.Name, Min: f.Min, Max: f.Max, Integer: f.Integer})
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- predict --------------------------------------------------------------

// PredictRequest is the /v1/predict payload: a batch of feature rows.
type PredictRequest struct {
	Rows [][]float64 `json:"rows"`
}

// PredictResponse returns per-row class probabilities and argmax labels,
// plus the snapshot version that produced them so clients can correlate
// predictions across a retrain. Every row of one response is produced by
// that single snapshot version, even when the request was coalesced into
// a scheduler batch spanning a snapshot swap.
type PredictResponse struct {
	Version int64       `json:"version"`
	Classes []string    `json:"classes"`
	Labels  []int       `json:"labels"`
	Proba   [][]float64 `json:"proba"`
}

// validateRows checks a batch of rows against the snapshot schema: row
// count bound, width, and finiteness (the same boundary data.ReadCSV
// enforces — a NaN row would silently poison every distance and split
// downstream).
func (s *Server) validateRows(w http.ResponseWriter, snap *Snapshot, rows [][]float64) bool {
	if len(rows) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "rows must not be empty")
		return false
	}
	if len(rows) > s.cfg.MaxBatchRows {
		writeError(w, http.StatusBadRequest, "batch_too_large",
			fmt.Sprintf("%d rows exceed the %d-row batch limit", len(rows), s.cfg.MaxBatchRows))
		return false
	}
	nf := snap.Train.Schema.NumFeatures()
	for i, row := range rows {
		if len(row) != nf {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("row %d has %d features, schema has %d", i, len(row), nf))
			return false
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				writeError(w, http.StatusBadRequest, "non_finite",
					fmt.Sprintf("row %d column %d is not finite", i, j))
				return false
			}
		}
	}
	return true
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request, m *Model) {
	var req PredictRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	snap, ok := currentSnapshot(w, m)
	if !ok {
		return
	}
	if !s.validateRows(w, snap, req.Rows) {
		return
	}
	if s.cfg.DisableCoalescing {
		s.predictDirect(w, snap, req.Rows)
		return
	}
	job := m.batcher.do(req.Rows)
	defer job.release()
	if job.err != nil {
		if errors.Is(job.err, errNoSnapshot) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "unavailable", "no model snapshot published yet")
			return
		}
		writeError(w, http.StatusInternalServerError, "batch_failed", job.err.Error())
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{
		Version: job.version,
		Classes: job.classes,
		Labels:  job.labels,
		Proba:   job.proba,
	})
}

// predictDirect is the legacy per-request sweep: one row-major ensemble
// pass with per-request allocations. It is kept as the recorded baseline
// the coalesced scheduler is measured (and proven bit-identical) against.
func (s *Server) predictDirect(w http.ResponseWriter, snap *Snapshot, rows [][]float64) {
	k := snap.Ensemble.NumClasses
	backing := make([]float64, len(rows)*k)
	proba := make([][]float64, len(rows))
	for i := range proba {
		proba[i] = backing[i*k : (i+1)*k : (i+1)*k]
	}
	snap.Ensemble.PredictProbaBatchInto(rows, proba)
	labels := make([]int, len(rows))
	for i := range labels {
		labels[i] = metrics.Argmax(proba[i])
	}
	writeJSON(w, http.StatusOK, PredictResponse{
		Version: snap.Version,
		Classes: snap.Train.Schema.Classes,
		Labels:  labels,
		Proba:   proba,
	})
}

// --- ale ------------------------------------------------------------------

// ALERequest selects a feature (by index, or by name when Name is set),
// a class probability output, and an optional grid resolution.
type ALERequest struct {
	Feature int    `json:"feature"`
	Name    string `json:"name,omitempty"`
	Class   int    `json:"class"`
	Bins    int    `json:"bins,omitempty"`
}

// ALEResponse is the committee interpretation of one feature: the shared
// grid, the cross-model mean effect, and the per-point disagreement (the
// paper's feedback signal).
type ALEResponse struct {
	Version int64     `json:"version"`
	Feature int       `json:"feature"`
	Name    string    `json:"name"`
	Class   int       `json:"class"`
	Method  string    `json:"method"`
	Grid    []float64 `json:"grid"`
	Mean    []float64 `json:"mean"`
	Std     []float64 `json:"std"`
}

func (s *Server) handleALE(w http.ResponseWriter, r *http.Request, m *Model) {
	var req ALERequest
	if !decodeJSON(w, r, &req) {
		return
	}
	snap, ok := currentSnapshot(w, m)
	if !ok {
		return
	}
	schema := snap.Train.Schema
	j := req.Feature
	if req.Name != "" {
		if j = schema.FeatureIndex(req.Name); j < 0 {
			writeError(w, http.StatusBadRequest, "unknown_feature",
				fmt.Sprintf("no feature named %q", req.Name))
			return
		}
	}
	if j < 0 || j >= schema.NumFeatures() {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("feature %d out of range [0, %d)", j, schema.NumFeatures()))
		return
	}
	if req.Class < 0 || req.Class >= schema.NumClasses() {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("class %d out of range [0, %d)", req.Class, schema.NumClasses()))
		return
	}
	opts := interpret.Options{Bins: req.Bins, Class: req.Class, Workers: s.cfg.Feedback.Workers}
	if opts.Bins <= 0 {
		opts.Bins = s.cfg.Feedback.Bins
	}
	// Normalize before keying the cache so defaulted and explicit forms
	// of the same query (bins 0 vs 32) share one entry.
	opts = opts.Normalized()
	build := func(cc interpret.CommitteeCurve) ALEResponse {
		return ALEResponse{
			Version: snap.Version,
			Feature: j,
			Name:    schema.Features[j].Name,
			Class:   req.Class,
			Method:  s.cfg.Feedback.Method.String(),
			Grid:    cc.Grid,
			Mean:    cc.Mean,
			Std:     cc.Std,
		}
	}
	var resp ALEResponse
	var err error
	if ist := s.interpFor(m, snap); ist != nil {
		resp, err = ist.ale.get(r.Context(), aleKey{feature: j, class: opts.Class, bins: opts.Bins},
			func(ctx context.Context) (ALEResponse, error) {
				cc, cerr := ist.curves.Committee(ctx, j, s.cfg.Feedback.Method, opts)
				if cerr != nil {
					return ALEResponse{}, cerr
				}
				return build(cc), nil
			})
	} else {
		var cc interpret.CommitteeCurve
		cc, err = interpret.CommitteeCtx(r.Context(), snap.Ensemble.Models(), snap.Train, j, s.cfg.Feedback.Method, opts)
		if err == nil {
			resp = build(cc)
		}
	}
	if err != nil {
		s.writeComputeError(w, err, "ale")
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeComputeError maps interpretation/feedback errors to structured
// responses: deadline expiry is 504, a constant feature is a client-side
// 422, everything else a 500.
func (s *Server) writeComputeError(w http.ResponseWriter, err error, what string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		writeError(w, http.StatusGatewayTimeout, "deadline",
			fmt.Sprintf("%s computation exceeded the request deadline", what))
	case errors.Is(err, interpret.ErrConstantFeature):
		writeError(w, http.StatusUnprocessableEntity, "constant_feature", err.Error())
	default:
		writeError(w, http.StatusInternalServerError, what+"_failed", err.Error())
	}
}

// --- regions --------------------------------------------------------------

// RegionsRequest configures a disagreement-region query. Zero values keep
// the server's feedback defaults (median-heuristic threshold).
type RegionsRequest struct {
	Bins      int     `json:"bins,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
}

// RegionInterval is one flagged range of one feature.
type RegionInterval struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// RegionFeature is the per-feature analysis: where the committee
// disagrees and how much.
type RegionFeature struct {
	Feature   int              `json:"feature"`
	Name      string           `json:"name"`
	PeakStd   float64          `json:"peak_std"`
	Threshold float64          `json:"threshold"`
	Flagged   bool             `json:"flagged"`
	Intervals []RegionInterval `json:"intervals,omitempty"`
}

// RegionsResponse is the full disagreement analysis plus the paper's
// operator-facing explanation text.
type RegionsResponse struct {
	Version   int64           `json:"version"`
	Method    string          `json:"method"`
	Threshold float64         `json:"threshold"`
	Features  []RegionFeature `json:"features"`
	Explain   string          `json:"explain"`
}

func (s *Server) handleRegions(w http.ResponseWriter, r *http.Request, m *Model) {
	var req RegionsRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	snap, ok := currentSnapshot(w, m)
	if !ok {
		return
	}
	cfg := s.cfg.Feedback
	if req.Bins > 0 {
		cfg.Bins = req.Bins
	}
	if req.Threshold > 0 {
		cfg.Threshold = req.Threshold
	}
	build := func(ctx context.Context, curves *core.CurveCache) (RegionsResponse, error) {
		cfg := cfg
		cfg.Curves = curves
		fb, err := core.ComputeCtx(ctx, core.WithinCommittee(snap.Ensemble), snap.Train, cfg)
		if err != nil {
			return RegionsResponse{}, err
		}
		resp := RegionsResponse{
			Version:   snap.Version,
			Method:    fb.Method.String(),
			Threshold: fb.Threshold,
			Explain:   fb.Explain(),
		}
		for _, fa := range fb.Analyses {
			rf := RegionFeature{
				Feature:   fa.Feature,
				Name:      fa.Name,
				PeakStd:   fa.PeakStd,
				Threshold: fa.Threshold,
				Flagged:   fa.Flagged(),
			}
			for _, iv := range fa.Intervals {
				rf.Intervals = append(rf.Intervals, RegionInterval{Lo: iv.Lo, Hi: iv.Hi})
			}
			resp.Features = append(resp.Features, rf)
		}
		return resp, nil
	}
	var resp RegionsResponse
	var err error
	if ist := s.interpFor(m, snap); ist != nil {
		// Computing through the snapshot's curve cache means a regions
		// request also primes the per-feature curves that /v1/ale and the
		// warm-start shift detector read.
		resp, err = ist.regions.get(r.Context(),
			regionsKey{bins: cfg.Bins, threshold: math.Float64bits(cfg.Threshold)},
			func(ctx context.Context) (RegionsResponse, error) { return build(ctx, ist.curves) })
	} else {
		resp, err = build(r.Context(), nil)
	}
	if err != nil {
		s.writeComputeError(w, err, "regions")
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- retrain --------------------------------------------------------------

// RetrainRequest triggers a retrain on the current training set plus the
// optional newly labelled rows — the operator's "label the suggested
// points, retrain" step from the paper's feedback loop.
type RetrainRequest struct {
	Rows          [][]float64 `json:"rows,omitempty"`
	Labels        []int       `json:"labels,omitempty"`
	Seed          *uint64     `json:"seed,omitempty"`
	MaxCandidates int         `json:"max_candidates,omitempty"`
}

// RetrainResponse reports the published snapshot after a successful
// retrain.
type RetrainResponse struct {
	Version   int64   `json:"version"`
	ValScore  float64 `json:"val_score"`
	Members   int     `json:"members"`
	Evaluated int     `json:"evaluated"`
	TrainRows int     `json:"train_rows"`
	Attempt   int64   `json:"attempt"`
}

func (s *Server) handleRetrain(w http.ResponseWriter, r *http.Request, m *Model) {
	var req RetrainRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	snap, ok := currentSnapshot(w, m)
	if !ok {
		return
	}
	if len(req.Rows) != len(req.Labels) {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("%d rows but %d labels", len(req.Rows), len(req.Labels)))
		return
	}
	if len(req.Rows) > s.cfg.MaxBatchRows {
		writeError(w, http.StatusBadRequest, "batch_too_large",
			fmt.Sprintf("%d rows exceed the %d-row batch limit", len(req.Rows), s.cfg.MaxBatchRows))
		return
	}
	// Build the new training set off to the side; validation errors are
	// the client's, and must neither touch the served snapshot nor count
	// against the breaker.
	newTrain := snap.Train.Clone()
	for i, row := range req.Rows {
		if err := newTrain.AppendRow(row, req.Labels[i]); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("row %d: %v", i, err))
			return
		}
	}
	if !m.retrainBusy.CompareAndSwap(false, true) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "retrain_in_progress", "another retrain is already running")
		return
	}
	defer m.retrainBusy.Store(false)
	if ok, retryAfter := m.breaker.Allow(); !ok {
		secs := int(retryAfter/time.Second) + 1
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusServiceUnavailable, "breaker_open",
			fmt.Sprintf("retrain circuit breaker is open; retry in %ds", secs))
		return
	}
	// Allow may have reserved the half-open probe slot. Success and
	// Failure both release it; this covers the verdict-free exits — the
	// client-canceled return below and a panic inside the search — so a
	// canceled probe can never wedge the breaker into shedding forever.
	defer m.breaker.Cancel()

	attempt := m.retrains.Add(1)
	mlCfg := s.cfg.AutoML
	// Mirror core.RunLoopCtx's per-round seed derivation so repeated
	// retrains explore fresh search randomness deterministically.
	mlCfg.Seed = s.cfg.AutoML.Seed + uint64(attempt)*131
	if req.Seed != nil {
		mlCfg.Seed = *req.Seed
	}
	if req.MaxCandidates > 0 {
		mlCfg.MaxCandidates = req.MaxCandidates
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RetrainTimeout)
	defer cancel()

	var ens *automl.Ensemble
	var err error
	if s.cfg.Fault.RetrainFailsFor(m.name, int(attempt)) {
		err = faultinject.ErrInjected
	} else {
		ens, err = automl.RunCtx(ctx, newTrain, mlCfg)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			// The client went away; that is not a model failure, so it
			// neither degrades the service nor counts against the breaker.
			writeError(w, http.StatusInternalServerError, "retrain_canceled", "retrain canceled by client")
			return
		}
		m.breaker.Failure()
		reason := fmt.Sprintf("retrain %d failed: %v", attempt, err)
		m.degraded.Store(&reason)
		s.logf("serve: model %q degraded, keeping snapshot v%d: %s", m.name, snap.Version, reason)
		writeError(w, http.StatusInternalServerError, "retrain_failed",
			fmt.Sprintf("%s; still serving snapshot v%d", reason, snap.Version))
		return
	}
	// An operator retrain extends snap.Train, which already folds in the
	// first snap.FeedbackRows store rows — the mark carries over. The
	// install (which persists before publishing) is part of the retrain's
	// verdict: a model that fit but cannot be made durable counts as a
	// failed retrain for the breaker and keeps the last-good snapshot.
	version, err := s.install(m, ens, newTrain, snap.FeedbackRows, mlCfg.Seed)
	if err != nil {
		m.breaker.Failure()
		writeError(w, http.StatusInternalServerError, "snapshot_persist_failed",
			fmt.Sprintf("retrain %d trained but could not persist: %v; still serving snapshot v%d",
				attempt, err, snap.Version))
		return
	}
	m.breaker.Success()
	writeJSON(w, http.StatusOK, RetrainResponse{
		Version:   version,
		ValScore:  ens.ValScore,
		Members:   len(ens.Members),
		Evaluated: ens.Evaluated,
		TrainRows: newTrain.Len(),
		Attempt:   attempt,
	})
}
