package serve

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock for driving breaker
// transitions deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(3, 30*time.Second, clk.Now)
	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("closed breaker rejected attempt %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	if ok, _ := b.Allow(); !ok {
		t.Fatal("closed breaker rejected third attempt")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", b.State())
	}
	ok, retryAfter := b.Allow()
	if ok {
		t.Fatal("open breaker admitted a request")
	}
	if retryAfter <= 0 || retryAfter > 30*time.Second {
		t.Fatalf("retryAfter = %v", retryAfter)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(1, 10*time.Second, clk.Now)
	b.Failure() // threshold 1: trips immediately
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	clk.Advance(9 * time.Second)
	if ok, _ := b.Allow(); ok {
		t.Fatal("breaker half-opened before cooldown elapsed")
	}
	clk.Advance(2 * time.Second)
	ok, _ := b.Allow()
	if !ok || b.State() != BreakerHalfOpen {
		t.Fatalf("expected half-open probe admission, got ok=%v state=%v", ok, b.State())
	}
	// Only one probe at a time.
	if ok, _ := b.Allow(); ok {
		t.Fatal("half-open breaker admitted a second probe")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
	if ok, _ := b.Allow(); !ok {
		t.Fatal("closed breaker rejected")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(1, 10*time.Second, clk.Now)
	b.Failure()
	clk.Advance(11 * time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("no probe admitted after cooldown")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after probe failure = %v, want open", b.State())
	}
	// The new cooldown starts at the probe failure.
	if ok, _ := b.Allow(); ok {
		t.Fatal("re-opened breaker admitted immediately")
	}
	clk.Advance(11 * time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("no probe after second cooldown")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

func TestBreakerCancelReleasesProbe(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(1, 10*time.Second, clk.Now)
	b.Failure()
	clk.Advance(11 * time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("no probe admitted after cooldown")
	}
	// The probe ends without a verdict (client cancel / panic). Without
	// Cancel the slot would stay reserved and every further Allow would
	// shed until restart.
	b.Cancel()
	if ok, _ := b.Allow(); !ok {
		t.Fatal("canceled probe did not release the half-open slot")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
	// After a verdict, Cancel is a no-op: deferred calls must not disturb
	// the closed breaker.
	b.Cancel()
	if ok, _ := b.Allow(); !ok || b.State() != BreakerClosed {
		t.Fatalf("Cancel after Success changed behavior: ok=%v state=%v", ok, b.State())
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(2, time.Second, clk.Now)
	b.Failure()
	b.Success()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("success did not reset the consecutive-failure count")
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
