package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/netml/alefb/internal/faultinject"
	"github.com/netml/alefb/internal/testutil"
)

// TestModelRoutingIndependentVersions: named tenants get their own
// routes, snapshot stores and version counters; the unprefixed routes
// keep serving the pinned default model.
func TestModelRoutingIndependentVersions(t *testing.T) {
	train, ensA, ensB := fixture(t)
	s := newTestServer(t, nil) // default at v1 (ensA)
	if v := s.InstallModel("tenant-b", ensB, train); v != 1 {
		t.Fatalf("tenant-b install = v%d, want v1", v)
	}
	if v := s.InstallModel("tenant-b", ensA, train); v != 2 {
		t.Fatalf("tenant-b second install = v%d, want v2 (own version counter)", v)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	row := [][]float64{{0.5, 0.5}}
	status, body, err := postJSON(ts.URL+"/v1/models/tenant-b/predict", PredictRequest{Rows: row})
	if err != nil || status != http.StatusOK {
		t.Fatalf("tenant-b predict: status %d err %v body %s", status, err, body)
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil || pr.Version != 2 {
		t.Fatalf("tenant-b predict version = %d (err %v), want 2", pr.Version, err)
	}
	status, body, err = postJSON(ts.URL+"/v1/predict", PredictRequest{Rows: row})
	if err != nil || status != http.StatusOK {
		t.Fatalf("default predict: status %d err %v", status, err)
	}
	if err := json.Unmarshal(body, &pr); err != nil || pr.Version != 1 {
		t.Fatalf("default predict version = %d, want 1 (unaffected by tenant-b installs)", pr.Version)
	}

	// Unknown model: structured 404.
	status, _, raw := doReq(t, http.MethodPost, ts.URL+"/v1/models/nope/predict", PredictRequest{Rows: row})
	wantError(t, status, raw, http.StatusNotFound, "model_not_found")

	// /v1/models lists both tenants with their own versions.
	status, _, raw = doReq(t, http.MethodGet, ts.URL+"/v1/models", nil)
	if status != http.StatusOK {
		t.Fatalf("models = %d: %s", status, raw)
	}
	var mr ModelsResponse
	if err := json.Unmarshal(raw, &mr); err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, m := range mr.Models {
		got[m.Name] = m.Version
	}
	if got[DefaultModel] != 1 || got["tenant-b"] != 2 || len(got) != 2 {
		t.Fatalf("models = %v, want default:1 tenant-b:2", got)
	}
}

// TestCrossTenantRetrainFailureIsolation is the isolation headline: a
// failed retrain on tenant B must degrade B alone. The default model's
// predict responses stay byte-identical, its breaker stays closed, its
// own retrain still succeeds — and B keeps serving its last-good
// snapshot.
func TestCrossTenantRetrainFailureIsolation(t *testing.T) {
	defer testutil.LeakCheck(t)()
	train, _, ensB := fixture(t)
	s := newTestServer(t, func(c *Config) {
		c.Fault = faultinject.New().WithRetrainFailFor("tenant-b", 1)
	})
	s.InstallModel("tenant-b", ensB, train)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	row := [][]float64{{0.47, 0.9}}
	_, before, err := postJSON(ts.URL+"/v1/predict", PredictRequest{Rows: row})
	if err != nil {
		t.Fatal(err)
	}

	// Tenant B's retrain fails: 500, degraded, last-good still serving.
	status, _, raw := doReq(t, http.MethodPost, ts.URL+"/v1/models/tenant-b/retrain", RetrainRequest{})
	wantError(t, status, raw, http.StatusInternalServerError, "retrain_failed")
	status, body, err := postJSON(ts.URL+"/v1/models/tenant-b/predict", PredictRequest{Rows: row})
	if err != nil || status != http.StatusOK {
		t.Fatalf("tenant-b predict after failed retrain: status %d err %v", status, err)
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil || pr.Version != 1 {
		t.Fatalf("tenant-b serves version %d, want last-good 1", pr.Version)
	}

	// The default model noticed nothing: bytes, breaker, degraded state.
	_, after, err := postJSON(ts.URL+"/v1/predict", PredictRequest{Rows: row})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("default predict changed across tenant-b's failed retrain:\n%s\nwas %s", after, before)
	}
	if st := s.def.breaker.State(); st != BreakerClosed {
		t.Fatalf("default breaker = %v, want closed", st)
	}
	if reason := s.def.degraded.Load(); reason != nil {
		t.Fatalf("default degraded = %q, want healthy", *reason)
	}
	if reason := s.Model("tenant-b").degraded.Load(); reason == nil {
		t.Fatal("tenant-b should be degraded after its failed retrain")
	}

	// readyz: default ready, tenant-b degraded, independently.
	status, _, raw = doReq(t, http.MethodGet, ts.URL+"/readyz", nil)
	if status != http.StatusOK {
		t.Fatalf("readyz = %d (default model is healthy): %s", status, raw)
	}
	var rr ReadyResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != "ready" {
		t.Fatalf("readyz status = %q, want ready", rr.Status)
	}
	byName := map[string]ModelStatus{}
	for _, m := range rr.Models {
		byName[m.Name] = m
	}
	if byName[DefaultModel].Status != "ready" || byName["tenant-b"].Status != "degraded" {
		t.Fatalf("model statuses = %+v, want default ready / tenant-b degraded", byName)
	}

	// The default model's own retrain still succeeds (its attempt 1 is
	// not faulted — the injection was scoped to tenant-b).
	status, _, raw = doReq(t, http.MethodPost, ts.URL+"/v1/retrain", RetrainRequest{})
	if status != http.StatusOK {
		t.Fatalf("default retrain = %d, want 200: %s", status, raw)
	}
}

// TestCrossTenantBreakerIsolation: tripping tenant B's retrain breaker
// sheds B's retrains with 503 while the default model's breaker stays
// closed and its predicts stay identical.
func TestCrossTenantBreakerIsolation(t *testing.T) {
	defer testutil.LeakCheck(t)()
	train, _, ensB := fixture(t)
	s := newTestServer(t, func(c *Config) {
		c.BreakerThreshold = 2
		c.Fault = faultinject.New().
			WithRetrainFailFor("tenant-b", 1).
			WithRetrainFailFor("tenant-b", 2)
	})
	s.InstallModel("tenant-b", ensB, train)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	row := [][]float64{{0.52, 0.1}}
	_, before, err := postJSON(ts.URL+"/v1/predict", PredictRequest{Rows: row})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		status, _, raw := doReq(t, http.MethodPost, ts.URL+"/v1/models/tenant-b/retrain", RetrainRequest{})
		wantError(t, status, raw, http.StatusInternalServerError, "retrain_failed")
	}
	if st := s.Model("tenant-b").breaker.State(); st != BreakerOpen {
		t.Fatalf("tenant-b breaker = %v, want open after 2 failures", st)
	}
	status, hdr, raw := doReq(t, http.MethodPost, ts.URL+"/v1/models/tenant-b/retrain", RetrainRequest{})
	wantError(t, status, raw, http.StatusServiceUnavailable, "breaker_open")
	if hdr.Get("Retry-After") == "" {
		t.Fatal("breaker_open shed missing Retry-After")
	}

	if st := s.def.breaker.State(); st != BreakerClosed {
		t.Fatalf("default breaker = %v, want closed (B's failures must not leak)", st)
	}
	_, after, err := postJSON(ts.URL+"/v1/predict", PredictRequest{Rows: row})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("default predict changed across tenant-b breaker trip")
	}
}

// TestCrossTenantSweepPanicIsolation: a panicking coalesced sweep on
// tenant B (broken snapshot) returns structured 500s on B only; the
// default model's scheduler and responses are untouched.
func TestCrossTenantSweepPanicIsolation(t *testing.T) {
	defer testutil.LeakCheck(t)()
	train, _, _ := fixture(t)
	s := newTestServer(t, nil)
	b, _ := s.models.getOrCreate("tenant-b", s.newModel)
	b.snap.Publish(&Snapshot{Ensemble: nil, Train: train, Version: 1}) // sweep will panic
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	row := [][]float64{{0.3, 0.6}}
	_, before, err := postJSON(ts.URL+"/v1/predict", PredictRequest{Rows: row})
	if err != nil {
		t.Fatal(err)
	}
	status, body, err := postJSON(ts.URL+"/v1/models/tenant-b/predict", PredictRequest{Rows: row})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusInternalServerError {
		t.Fatalf("tenant-b predict = %d, want 500", status)
	}
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil || (eb.Error.Code != "panic" && eb.Error.Code != "batch_failed") {
		t.Fatalf("tenant-b panic response not structured: %s", body)
	}
	_, after, err := postJSON(ts.URL+"/v1/predict", PredictRequest{Rows: row})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("default predict changed across tenant-b sweep panic")
	}
}

// TestLRUEvictionPinnedDefault: the registry evicts the coldest unpinned
// model at capacity; the default model is never a victim, and recently
// used tenants survive over stale ones.
func TestLRUEvictionPinnedDefault(t *testing.T) {
	train, ensA, ensB := fixture(t)
	s := newTestServer(t, func(c *Config) { c.MaxModels = 2 })
	s.InstallModel("tenant-b", ensB, train)
	s.InstallModel("tenant-c", ensA, train)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Touch tenant-b so tenant-c is the coldest unpinned model.
	row := [][]float64{{0.2, 0.2}}
	if status, _, err := postJSON(ts.URL+"/v1/models/tenant-b/predict", PredictRequest{Rows: row}); err != nil || status != http.StatusOK {
		t.Fatalf("tenant-b predict: %d %v", status, err)
	}
	s.InstallModel("tenant-d", ensB, train) // capacity 2 exceeded: evicts tenant-c

	status, _, raw := doReq(t, http.MethodPost, ts.URL+"/v1/models/tenant-c/predict", PredictRequest{Rows: row})
	wantError(t, status, raw, http.StatusNotFound, "model_not_found")
	for _, name := range []string{"tenant-b", "tenant-d"} {
		if status, _, err := postJSON(ts.URL+"/v1/models/"+name+"/predict", PredictRequest{Rows: row}); err != nil || status != http.StatusOK {
			t.Fatalf("%s predict after eviction: %d %v", name, status, err)
		}
	}
	if status, _, err := postJSON(ts.URL+"/v1/predict", PredictRequest{Rows: row}); err != nil || status != http.StatusOK {
		t.Fatalf("default predict: %d %v (pinned default must never be evicted)", status, err)
	}
	if n := s.models.len(); n != 3 {
		t.Fatalf("registry holds %d models, want 3 (default + 2 tenants)", n)
	}
}

// TestRegistryChurnChaos hammers predicts across a rotating tenant set
// while installs continuously evict and recreate models. Run under
// -race, it is the suite's data-race trap for the registry, the
// schedulers and snapshot publication; functionally, every response must
// be a structured 200 or 404 — an in-flight request on an evicted model
// finishes on the snapshot it loaded.
func TestRegistryChurnChaos(t *testing.T) {
	defer testutil.LeakCheck(t)()
	train, ensA, ensB := fixture(t)
	s := newTestServer(t, func(c *Config) {
		c.MaxModels = 2
		c.MaxInFlight = 128
	})
	names := []string{"churn-0", "churn-1", "churn-2", "churn-3"}
	for _, n := range names[:2] {
		s.InstallModel(n, ensA, train)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var installer sync.WaitGroup
	installer.Add(1)
	go func() {
		defer installer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				s.InstallModel(names[i%len(names)], ensA, train)
			} else {
				s.InstallModel(names[i%len(names)], ensB, train)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const workers, perWorker = 8, 40
	errCh := make(chan error, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			row := [][]float64{{0.1 * float64(w%10), 0.5}}
			for i := 0; i < perWorker; i++ {
				name := names[(w+i)%len(names)]
				status, body, err := postJSON(ts.URL+"/v1/models/"+name+"/predict", PredictRequest{Rows: row})
				if err != nil {
					errCh <- fmt.Errorf("worker %d req %d: transport: %v", w, i, err)
					return
				}
				switch status {
				case http.StatusOK:
				case http.StatusNotFound:
					var eb ErrorBody
					if jerr := json.Unmarshal(body, &eb); jerr != nil || eb.Error.Code != "model_not_found" {
						errCh <- fmt.Errorf("worker %d req %d: naked 404: %s", w, i, body)
						return
					}
				default:
					errCh <- fmt.Errorf("worker %d req %d: status %d: %s", w, i, status, body)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	installer.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestModelsStatsSurfaced: the scheduler's coalescing counters appear in
// /v1/models after predicts flow.
func TestModelsStatsSurfaced(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 3; i++ {
		if status, _, err := postJSON(ts.URL+"/v1/predict", PredictRequest{Rows: [][]float64{{0.4, 0.4}, {0.6, 0.6}}}); err != nil || status != http.StatusOK {
			t.Fatalf("predict %d: %d %v", i, status, err)
		}
	}
	status, _, raw := doReq(t, http.MethodGet, ts.URL+"/v1/models", nil)
	if status != http.StatusOK {
		t.Fatalf("models = %d", status)
	}
	var mr ModelsResponse
	if err := json.Unmarshal(raw, &mr); err != nil || len(mr.Models) != 1 {
		t.Fatalf("models body %s (err %v)", raw, err)
	}
	st := mr.Models[0]
	if st.Batches < 1 || st.BatchedReqs < st.Batches || st.RowsSwept != 6 {
		t.Fatalf("scheduler stats = %+v, want batches>=1, batchedReqs>=batches, rowsSwept=6", st)
	}
}
