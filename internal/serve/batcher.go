package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/faultinject"
	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/parallel"
)

// errNoSnapshot is surfaced by a coalesced batch whose model lost its
// snapshot between validation and execution (never happens today —
// snapshots are only ever replaced — but the scheduler refuses to
// assume that).
var errNoSnapshot = errors.New("serve: no model snapshot published")

// batcher is the request-coalescing micro-batch scheduler of one model.
//
// It has no resident goroutine. The first predict request to arrive
// acquires the leader token and becomes the batch leader; concurrent
// requests hand their job to the leader over an unbuffered channel and
// wait. The leader closes the batch when one of four things happens:
//
//   - no predict of this model is still seeking a batch (the
//     `interested` gauge reads zero — the common case, which is why an
//     isolated request pays no added latency at all),
//   - the coalesced row count reaches MaxBatchRows,
//   - MaxBatchDelay elapses (the bound on waiting for a request that
//     registered interest but has not handed over its job yet),
//   - an injected scheduler-stall gate closes (tests only).
//
// It then runs ONE member-major ensemble sweep over the concatenated
// rows — the flat SoA engine's lockstep walk amortizes tree traversal
// across every tenant request in the batch — on a sync.Pool-backed
// arena, and splits the result views back per request. All rows of a
// batch are served by the single snapshot loaded at execution time, so
// a concurrent publish can never tear a batch across versions.
//
// Leader-based batching means the scheduler's lifetime is exactly the
// requests': nothing to start, stop, drain, or leak on model eviction.
type batcher struct {
	maxRows int
	delay   time.Duration
	workers int
	fault   *faultinject.Injector
	snap    func() *Snapshot

	leaderTok chan struct{}
	jobs      chan *predictJob

	// batchSeq numbers batches (0-based) and keys WithSchedulerStall.
	batchSeq atomic.Int64
	// interested counts predicts still seeking a batch. A request
	// increments it on entry to do(); the batch leader that absorbs the
	// request decrements it (receiver-side, so the gauge can never go
	// stale while a served request unwinds). The leader flushes as soon
	// as the gauge reads zero: nobody else is trying to join, so waiting
	// longer can only add latency.
	interested atomic.Int64
	// pending publishes the size of the currently forming batch so tests
	// can await a known composition without sleeping.
	pending atomic.Int64

	// Stats, surfaced per model in /v1/models.
	batches      atomic.Int64
	batchedReqs  atomic.Int64
	rowsSwept    atomic.Int64
	timerFlushes atomic.Int64
}

func newBatcher(maxRows int, delay time.Duration, workers int, fault *faultinject.Injector, snap func() *Snapshot) *batcher {
	return &batcher{
		maxRows:   maxRows,
		delay:     delay,
		workers:   workers,
		fault:     fault,
		snap:      snap,
		leaderTok: make(chan struct{}, 1),
		jobs:      make(chan *predictJob),
	}
}

// predictJob is one request's slot in a coalesced batch. The result
// fields are views into the batch arena; release returns the arena to
// its pool once every job of the batch has written its response.
type predictJob struct {
	rows [][]float64

	version int64
	classes []string
	labels  []int
	proba   [][]float64
	err     error

	arena *predictArena
	done  chan struct{}
}

// release hands the job's share of the batch arena back. Must be called
// exactly once, after the response has been serialized.
func (j *predictJob) release() {
	if j.arena != nil {
		if j.arena.refs.Add(-1) == 0 {
			arenaPool.Put(j.arena)
		}
		j.arena = nil
	}
}

// predictArena is the pooled scratch of one coalesced sweep: the
// concatenated row pointers, the contiguous output probability matrix,
// and the argmax labels. refs counts the jobs still holding views.
type predictArena struct {
	X      [][]float64
	out    ml.Matrix
	labels []int
	refs   atomic.Int64
}

var arenaPool = sync.Pool{New: func() any { return &predictArena{} }}

// sweepScratchPool pools the per-worker member-major ensemble scratch.
var sweepScratchPool = sync.Pool{New: func() any { return &automl.PredictScratch{} }}

// do coalesces one predict request into a batch and blocks until its
// rows have been swept. The returned job carries result views into the
// shared arena; the caller must release() it after writing the response.
func (b *batcher) do(rows [][]float64) *predictJob {
	j := &predictJob{rows: rows, done: make(chan struct{})}
	b.interested.Add(1)
	select {
	case b.leaderTok <- struct{}{}:
		// Drain the leadership token in a defer: lead re-panics after a
		// sweep panic (so the guard middleware can render it), and leaking
		// the token on that path would wedge every future predict.
		defer func() { <-b.leaderTok }()
		b.lead(j)
	case b.jobs <- j:
		<-j.done
	}
	return j
}

// lead collects a batch seeded with the leader's own job and executes it.
// Absorbing a job (the seed, or one received over jobs) decrements the
// interested gauge exactly once per request.
func (b *batcher) lead(seed *predictJob) {
	seq := int(b.batchSeq.Add(1) - 1)
	gate := b.fault.SchedulerStall(seq)
	b.interested.Add(-1)
	batch := append(make([]*predictJob, 0, 16), seed)
	rows := len(seed.rows)
	b.pending.Store(1)
	timer := time.NewTimer(b.delay)
	defer timer.Stop()
	timedOut := false
	yields := 0
collect:
	for rows < b.maxRows {
		// The fast flush: nobody is seeking a batch, so waiting longer can
		// only add latency. An interested request is guaranteed to arrive
		// — its jobs-send is the only enabled select case while this
		// leader holds the token — so blocking on jobs below is safe. A
		// stall gate suppresses the flush so tests can assemble exact
		// compositions.
		//
		// Before trusting a zero gauge, yield the processor a couple of
		// times: under load, concurrent requests are often runnable but
		// not yet scheduled (especially with few cores), and have not had
		// the chance to declare interest. A yield costs well under a
		// microsecond on an idle server; under load it converts singleton
		// batches into real coalescing.
		if gate == nil && b.interested.Load() == 0 {
			if yields >= 2 {
				break
			}
			yields++
			runtime.Gosched()
			continue
		}
		select {
		case j := <-b.jobs:
			b.interested.Add(-1)
			batch = append(batch, j)
			rows += len(j.rows)
			b.pending.Store(int64(len(batch)))
		case <-timer.C:
			timedOut = true
			break collect
		case <-gate:
			gate = nil
		}
	}
	b.pending.Store(0)
	if timedOut {
		b.timerFlushes.Add(1)
	}
	b.execute(batch, rows)
}

// execute runs the single coalesced sweep and distributes result views.
// Every job's done channel is closed exactly once, even when the sweep
// fails or panics — a stranded follower would hold its admission slot
// forever.
func (b *batcher) execute(batch []*predictJob, totalRows int) {
	delivered := false
	defer func() {
		if delivered {
			return
		}
		// The sweep panicked. Fail every job with a structured error so
		// followers return 500 envelopes, then re-panic on the leader's
		// goroutine where the guard middleware renders and logs it.
		v := recover()
		err := fmt.Errorf("serve: coalesced sweep panicked: %v", v)
		for _, j := range batch {
			j.err = err
			close(j.done)
		}
		if v != nil {
			panic(v)
		}
	}()

	snap := b.snap()
	if snap == nil {
		for _, j := range batch {
			j.err = errNoSnapshot
			close(j.done)
		}
		delivered = true
		return
	}

	arena := arenaPool.Get().(*predictArena)
	arena.X = arena.X[:0]
	for _, j := range batch {
		arena.X = append(arena.X, j.rows...)
	}
	k := snap.Ensemble.NumClasses
	out := arena.out.Rows(totalRows, k)
	if cap(arena.labels) < totalRows {
		arena.labels = make([]int, totalRows)
	}
	labels := arena.labels[:totalRows]

	b.sweep(snap.Ensemble, arena.X, out, labels)

	b.batches.Add(1)
	b.batchedReqs.Add(int64(len(batch)))
	b.rowsSwept.Add(int64(totalRows))

	arena.refs.Store(int64(len(batch)))
	classes := snap.Train.Schema.Classes
	off := 0
	for _, j := range batch {
		n := len(j.rows)
		j.version = snap.Version
		j.classes = classes
		j.proba = out[off : off+n : off+n]
		j.labels = labels[off : off+n : off+n]
		j.arena = arena
		off += n
		close(j.done)
	}
	delivered = true
}

// sweepChunk is the fixed row granularity of one worker unit. Chunk
// boundaries never depend on the worker count, and each row's result is
// independent of its neighbors, so the sweep is bit-identical at every
// Workers setting — the same contract as every parallel path in this
// repo.
const sweepChunk = 256

// sweep fills out and labels for X using the member-major shared-scratch
// ensemble path, chunked across the configured predict workers.
func (b *batcher) sweep(ens *automl.Ensemble, X, out [][]float64, labels []int) {
	nChunks := (len(X) + sweepChunk - 1) / sweepChunk
	if parallel.Workers(b.workers) <= 1 || nChunks <= 1 {
		sc := sweepScratchPool.Get().(*automl.PredictScratch)
		ens.PredictProbaBatchIntoScratch(X, out, sc)
		sweepScratchPool.Put(sc)
	} else {
		err := parallel.ForEach(nChunks, b.workers, func(c int) error {
			lo := c * sweepChunk
			hi := min(lo+sweepChunk, len(X))
			sc := sweepScratchPool.Get().(*automl.PredictScratch)
			ens.PredictProbaBatchIntoScratch(X[lo:hi], out[lo:hi], sc)
			sweepScratchPool.Put(sc)
			return nil
		})
		if err != nil {
			panic(err) // recovered into per-job errors by execute's defer
		}
	}
	for i := range out {
		labels[i] = metrics.Argmax(out[i])
	}
}
