package serve

// Off-path debounced drift evaluation. The seed evaluated the sliding
// window's Cross-ALE disagreement inline on every /v1/feedback request,
// under the request's context: the ingest ack waited out an O(window ×
// members × bins) analysis, concurrent ingests re-ran it redundantly
// over near-identical windows, and a client disconnect after the
// durable WAL append canceled the drift check that the durable rows had
// already earned.
//
// The driftEvaluator moves all of that off the request path. The
// handler appends to the WAL, tells the evaluator what it appended, and
// acks. The evaluator owns a core.SlidingWindow mirroring the store's
// trailing DriftWindow rows in O(new rows) per ingest, and evaluates at
// deterministic record-sequence gates: whenever the acknowledged
// sequence crosses a multiple of DriftEvalEvery, a window capture at
// that sequence is queued for the single evaluation worker. Bursts that
// cross several gates before the worker catches up coalesce into one
// evaluation at the newest capture — the published DriftStatus for a
// given evaluated sequence is still bit-identical to the seed's inline
// evaluation at that same sequence, because both analyse exactly the
// store's trailing window at that sequence. Evaluations run under the
// server's retrain context, not the request's, fixing the
// disconnect-cancellation bug in passing.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"github.com/netml/alefb/internal/core"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/feedback"
)

// driftCapture is one queued evaluation: the window materialized at a
// gate sequence, plus the snapshot whose committee analyses it.
type driftCapture struct {
	seq  int64
	snap *Snapshot
	d    *data.Dataset
}

// driftEvaluator is the per-model debounced drift monitor. All mutable
// state is guarded by mu except the atomic counters, which the status
// endpoints read lock-free. At most one evaluation worker runs at a
// time (tracked by running); at most one capture is pending, so a burst
// of gate crossings costs one window copy and one evaluation.
type driftEvaluator struct {
	s *Server
	m *Model

	mu       sync.Mutex
	win      *core.SlidingWindow
	pending  *driftCapture // newest queued capture, nil when none
	spare    *driftCapture // recycled capture buffer, reused across evaluations
	running  bool
	lastGate int64 // sequence of the newest capture ever queued

	evalSeq   atomic.Int64 // sequence of the newest COMPLETED evaluation
	evals     atomic.Int64 // completed evaluations
	coalesced atomic.Int64 // gate crossings folded into a newer capture
	evalNanos atomic.Int64 // cumulative evaluation wall time
}

// driftEvalFor returns m's evaluator, creating it on first use. A fresh
// evaluator primes its ring from the durable store so that a restart (or
// a first ingest after replay) evaluates the same trailing window the
// seed would have.
func (s *Server) driftEvalFor(m *Model, snap *Snapshot, st *feedback.Store) *driftEvaluator {
	m.driftEvalMu.Lock()
	defer m.driftEvalMu.Unlock()
	if m.driftEval != nil {
		return m.driftEval
	}
	ev := &driftEvaluator{
		s:   s,
		m:   m,
		win: core.NewSlidingWindow(snap.Train.Schema, s.cfg.DriftWindow),
	}
	rows, labels := st.Window(s.cfg.DriftWindow)
	ev.win.Reset(rows, labels, st.Seq())
	m.driftEval = ev
	return ev
}

// noteIngest records one acknowledged append: rows were durably
// appended and seq is the store sequence after them. It advances the
// ring, queues a capture if a gate was crossed, and reports the newest
// completed evaluation sequence plus whether a newer one is pending —
// the handler echoes both in the ack so clients can correlate the
// drift fields with the data they cover.
func (ev *driftEvaluator) noteIngest(snap *Snapshot, st *feedback.Store, rows [][]float64, labels []int, seq int64) (evalSeq int64, pending bool) {
	ev.mu.Lock()
	switch {
	case seq == ev.win.Total()+int64(len(rows)):
		// The common case: this batch directly extends the mirror.
		ev.win.Push(rows, labels)
	case seq > ev.win.Total():
		// A concurrent ingest acknowledged after us reached the evaluator
		// first; our incremental delta is no longer the tail. Resync the
		// mirror from the store's current trailing window.
		rs, ls := st.Window(ev.win.Cap())
		ev.win.Reset(rs, ls, st.Seq())
	default:
		// A resync above already covers this batch; nothing to do.
	}

	every := int64(ev.s.cfg.DriftEvalEvery)
	if total := ev.win.Total(); total/every > ev.lastGate/every && ev.win.Len() > 0 {
		cap := ev.pending
		if cap != nil {
			// An unstarted capture exists: fold it into this newer one.
			ev.coalesced.Add(1)
		} else if ev.spare != nil {
			cap, ev.spare = ev.spare, nil
		} else {
			cap = &driftCapture{}
		}
		cap.seq = total
		cap.snap = snap
		cap.d = ev.win.Snapshot(cap.d)
		ev.pending = cap
		ev.lastGate = total
		if !ev.running {
			ev.running = true
			ev.s.retrainWG.Add(1)
			go ev.run()
		}
	}
	evalSeq = ev.evalSeq.Load()
	pending = ev.lastGate > evalSeq
	ev.mu.Unlock()
	return evalSeq, pending
}

// run is the evaluation worker: it drains pending captures and exits
// when none remain. It lives inside retrainWG for its whole life, so
// Shutdown's retrainCancel + Wait cleanly stops an in-flight evaluation
// and any retrain it triggers.
func (ev *driftEvaluator) run() {
	defer ev.s.retrainWG.Done()
	for {
		ev.mu.Lock()
		cap := ev.pending
		ev.pending = nil
		if cap == nil {
			ev.running = false
			ev.mu.Unlock()
			return
		}
		ev.mu.Unlock()
		ev.evaluate(cap)
		ev.mu.Lock()
		if ev.spare == nil {
			cap.snap = nil
			ev.spare = cap
		}
		ev.mu.Unlock()
	}
}

// evaluate runs one drift analysis over a captured window and publishes
// the result. The analysis is bit-identical to the seed's inline
// core.WindowDisagreementCtx over the store's trailing window at
// cap.seq: same rows, same committee, same Config.
func (ev *driftEvaluator) evaluate(cap *driftCapture) {
	s, m := ev.s, ev.m
	start := s.cfg.now()
	rep, err := core.WindowDisagreementData(s.retrainCtx, cap.snap.Ensemble.Models(), cap.d,
		s.cfg.DriftThreshold, s.cfg.Feedback)
	ev.evalNanos.Add(s.cfg.now().Sub(start).Nanoseconds())
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return // shutdown
		}
		// The rows are durable; a failed evaluation is logged, not fatal.
		s.logf("serve: model %q drift evaluation failed: %v", m.name, err)
		return
	}
	m.drift.Store(&DriftStatus{Std: rep.PeakStd, Feature: rep.Name, Drifted: rep.Drifted, Seq: cap.seq})
	ev.evals.Add(1)
	// evalSeq is published last: a reader that observes evalSeq == seq
	// also observes the DriftStatus and counters of that evaluation.
	ev.evalSeq.Store(cap.seq)
	if !rep.Drifted {
		return
	}
	// Trigger the retrain against the model's current snapshot (it may
	// have advanced past the captured one) so the fold starts from the
	// newest high-water mark, exactly as an inline trigger would.
	snap := m.snap.Current()
	if snap == nil {
		snap = cap.snap
	}
	st, err := s.feedbackStore(m)
	if err != nil {
		s.logf("serve: model %q drift retrain skipped, feedback store: %v", m.name, err)
		return
	}
	s.maybeDriftRetrain(m, snap, st)
}
