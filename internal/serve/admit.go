package serve

import (
	"context"
	"sync/atomic"
)

// admission is the bounded admission queue in front of every /v1 handler.
// At most maxInFlight requests execute concurrently; at most maxQueue
// more wait for a slot. Anything beyond that is shed immediately with
// 429 — the server never queues unboundedly, so a load spike degrades
// into fast rejections instead of ballooning latency and memory for
// every caller (shed-don't-queue).
type admission struct {
	tokens   chan struct{}
	waiting  atomic.Int64
	maxQueue int64
}

func newAdmission(maxInFlight, maxQueue int) *admission {
	return &admission{
		tokens:   make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
	}
}

// acquire claims an execution slot. It returns (true, false) once a slot
// is held, (false, true) when the wait queue is full and the request must
// be shed, and (false, false) when ctx ended while waiting. The waiter
// count is bounded: it can transiently overshoot maxQueue by concurrent
// arrivals but every overshooting arrival sheds itself immediately, so no
// request ever waits beyond the configured bound.
func (a *admission) acquire(ctx context.Context) (ok, shed bool) {
	select {
	case a.tokens <- struct{}{}:
		return true, false
	default:
	}
	if a.waiting.Add(1) > a.maxQueue {
		a.waiting.Add(-1)
		return false, true
	}
	defer a.waiting.Add(-1)
	select {
	case a.tokens <- struct{}{}:
		return true, false
	case <-ctx.Done():
		return false, false
	}
}

// release returns an execution slot.
func (a *admission) release() { <-a.tokens }

// inFlight reports the number of requests currently executing.
func (a *admission) inFlight() int { return len(a.tokens) }

// queued reports the number of requests waiting for a slot.
func (a *admission) queued() int { return int(a.waiting.Load()) }
