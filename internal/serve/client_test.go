package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// newRecordingClient returns a client whose sleeps are recorded instead
// of slept, with retry jitter seeded deterministically.
func newRecordingClient(base string, seed uint64) (*Client, *[]time.Duration) {
	c := NewClient(base, seed)
	sleeps := &[]time.Duration{}
	c.Sleep = func(d time.Duration) { *sleeps = append(*sleeps, d) }
	return c, sleeps
}

func TestClientRetriesThenSucceeds(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= 2 {
			writeError(w, http.StatusInternalServerError, "flaky", "try again")
			return
		}
		writeJSON(w, http.StatusOK, PredictResponse{Version: 7, Labels: []int{0}})
	}))
	defer ts.Close()
	c, sleeps := newRecordingClient(ts.URL, 42)
	resp, err := c.Predict(context.Background(), [][]float64{{0.1, 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != 7 || calls != 3 || len(*sleeps) != 2 {
		t.Fatalf("version %d calls %d sleeps %d", resp.Version, calls, len(*sleeps))
	}
}

func TestClientBackoffDeterministicAndBounded(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusInternalServerError, "down", "always failing")
	}))
	defer ts.Close()

	run := func(seed uint64) []time.Duration {
		c, sleeps := newRecordingClient(ts.URL, seed)
		_, err := c.Predict(context.Background(), [][]float64{{0.1, 0.2}})
		if err == nil {
			t.Fatal("expected terminal error")
		}
		return *sleeps
	}
	a, b := run(42), run(42)
	if len(a) != 4 {
		t.Fatalf("sleeps = %d, want MaxRetries=4", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at retry %d: %v vs %v", i, a[i], b[i])
		}
		// Attempt i backs off within [d/2, d) for d = BaseDelay<<i.
		d := 50 * time.Millisecond << uint(i)
		if a[i] < d/2 || a[i] >= d {
			t.Fatalf("retry %d slept %v, want [%v, %v)", i, a[i], d/2, d)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced the identical jitter schedule")
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			w.Header().Set("Retry-After", "3")
			writeError(w, http.StatusTooManyRequests, "overloaded", "shed")
			return
		}
		writeJSON(w, http.StatusOK, ReadyResponse{})
	}))
	defer ts.Close()
	c, sleeps := newRecordingClient(ts.URL, 1)
	var out ReadyResponse
	if err := c.do(context.Background(), http.MethodGet, "/", nil, &out, retryTransient); err != nil {
		t.Fatal(err)
	}
	if len(*sleeps) != 1 || (*sleeps)[0] != 3*time.Second {
		t.Fatalf("sleeps = %v, want the server's Retry-After of 3s", *sleeps)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		writeError(w, http.StatusBadRequest, "bad_request", "no")
	}))
	defer ts.Close()
	c, sleeps := newRecordingClient(ts.URL, 1)
	_, err := c.Predict(context.Background(), nil)
	ae, ok := err.(*APIError)
	if !ok || ae.Status != http.StatusBadRequest || ae.Code != "bad_request" {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 || len(*sleeps) != 0 {
		t.Fatalf("client retried a 400: calls %d sleeps %d", calls, len(*sleeps))
	}
}

// TestClientRetrainDoesNotRetryFailures pins the narrowed retrain retry
// policy: a 500 retrain_failed reports a search that genuinely ran and
// failed, so replaying it would launch another full search per retry and
// actively push the server's breaker toward open.
func TestClientRetrainDoesNotRetryFailures(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		writeError(w, http.StatusInternalServerError, "retrain_failed",
			"retrain 1 failed; still serving snapshot v1")
	}))
	defer ts.Close()
	c, sleeps := newRecordingClient(ts.URL, 1)
	_, err := c.Retrain(context.Background(), RetrainRequest{})
	ae, ok := err.(*APIError)
	if !ok || ae.Status != http.StatusInternalServerError || ae.Code != "retrain_failed" {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 || len(*sleeps) != 0 {
		t.Fatalf("client replayed a failed retrain: calls %d sleeps %d", calls, len(*sleeps))
	}
}

// TestClientRetrainRetriesSheds checks the retained half of the retrain
// policy: shed responses (429 queue full, 503 breaker open) are still
// retried — they mean "try later", not "the search failed".
func TestClientRetrainRetriesSheds(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		switch calls {
		case 1:
			writeError(w, http.StatusServiceUnavailable, "breaker_open", "cooling down")
		case 2:
			writeError(w, http.StatusTooManyRequests, "overloaded", "queue full")
		default:
			writeJSON(w, http.StatusOK, RetrainResponse{Version: 2, Attempt: 1})
		}
	}))
	defer ts.Close()
	c, sleeps := newRecordingClient(ts.URL, 1)
	out, err := c.Retrain(context.Background(), RetrainRequest{})
	if err != nil || out.Version != 2 {
		t.Fatalf("out %+v err %v", out, err)
	}
	if calls != 3 || len(*sleeps) != 2 {
		t.Fatalf("calls %d sleeps %d, want 3 calls with 2 backoffs", calls, len(*sleeps))
	}
}

// TestClientCancelInterruptsBackoff checks the backoff wait is
// context-aware: a server-sent Retry-After of 30s must not pin a caller
// whose context has already given up.
func TestClientCancelInterruptsBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		writeError(w, http.StatusTooManyRequests, "overloaded", "busy")
	}))
	defer ts.Close()
	c := NewClient(ts.URL, 1) // default context-aware timer wait
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Predict(ctx, [][]float64{{0.1, 0.2}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("canceled backoff still blocked %v (Retry-After honored past cancellation)", elapsed)
	}
}

func TestClientEndToEnd(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, 9)
	ctx := context.Background()

	sch, err := c.Schema(ctx)
	if err != nil || len(sch.Features) != 2 {
		t.Fatalf("schema: %+v err %v", sch, err)
	}
	pr, err := c.Predict(ctx, [][]float64{{0.2, 0.5}})
	if err != nil || len(pr.Labels) != 1 {
		t.Fatalf("predict: %+v err %v", pr, err)
	}
	ar, err := c.ALE(ctx, ALERequest{Name: "x0", Class: 1})
	if err != nil || len(ar.Grid) == 0 {
		t.Fatalf("ale: err %v", err)
	}
	rg, err := c.Regions(ctx, RegionsRequest{})
	if err != nil || len(rg.Features) != 2 {
		t.Fatalf("regions: err %v", err)
	}
	rd, err := c.Ready(ctx)
	if err != nil || rd.Status != "ready" {
		t.Fatalf("ready: %+v err %v", rd, err)
	}
}
