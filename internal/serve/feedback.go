package serve

// The always-on feedback loop (ROADMAP item 3). POST /v1/feedback
// durably ingests operator-labelled rows into the model's write-ahead
// feedback store, then evaluates drift: the committee's Cross-ALE
// disagreement over a sliding window of the most recent ingested rows.
// Past the configured threshold a retrain is triggered in the
// background through the same per-model breaker + single-flight path as
// operator retrains, preferring a warm start (refit only the committee
// members whose interpretation shifted) and falling back to a full
// AutoML search. Reads keep hitting the last-good snapshot throughout;
// a failed drift retrain degrades exactly like a failed operator
// retrain.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/core"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/faultinject"
	"github.com/netml/alefb/internal/feedback"
)

// DriftStatus is the published result of one sliding-window drift
// evaluation, surfaced in the status endpoints. Seq is the feedback
// record sequence the evaluated window ended at (0 for evaluations from
// the legacy synchronous path, which have no gate sequence).
type DriftStatus struct {
	Std     float64
	Feature string
	Drifted bool
	Seq     int64
}

// feedbackStore returns the model's feedback store, opening it on first
// use. With FeedbackDir configured the store lives in
// <FeedbackDir>/<model name> (names are path-safe by validModelName)
// and existing state is replayed; otherwise it is memory-only.
func (s *Server) feedbackStore(m *Model) (*feedback.Store, error) {
	m.fbMu.Lock()
	defer m.fbMu.Unlock()
	if m.fb != nil {
		return m.fb, nil
	}
	cfg := feedback.Config{CompactEvery: s.cfg.FeedbackCompactEvery, Fault: s.cfg.Fault}
	if s.cfg.FeedbackDir != "" {
		cfg.Dir = filepath.Join(s.cfg.FeedbackDir, m.name)
	}
	st, err := feedback.Open(cfg)
	if err != nil {
		return nil, err
	}
	m.fb = st
	return st, nil
}

// FeedbackRequest is the /v1/feedback payload: labelled rows to ingest.
type FeedbackRequest struct {
	Rows   [][]float64 `json:"rows"`
	Labels []int       `json:"labels"`
}

// FeedbackResponse acknowledges a durable ingest. Seq is the store's
// sequence number after the batch (the rows are fsynced before this
// response is written). The drift fields report the newest COMPLETED
// window evaluation: DriftEvalSeq is the record sequence it covered,
// and DriftPending is true when a newer evaluation is queued or running
// (with SyncDriftEval the evaluation is inline as in the seed, so the
// fields always describe this very ingest and DriftPending is never
// set). RetrainTriggered reports that this ingest's inline evaluation
// started a background retrain; off-path evaluations trigger retrains
// themselves, visible through the status endpoint instead.
type FeedbackResponse struct {
	Version          int64   `json:"version"`
	Seq              int64   `json:"seq"`
	StoreRows        int     `json:"store_rows"`
	Durable          bool    `json:"durable"`
	DriftStd         float64 `json:"drift_std"`
	DriftFeature     string  `json:"drift_feature,omitempty"`
	Drifted          bool    `json:"drifted"`
	DriftEvalSeq     int64   `json:"drift_eval_seq,omitempty"`
	DriftPending     bool    `json:"drift_pending,omitempty"`
	RetrainTriggered bool    `json:"retrain_triggered"`
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request, m *Model) {
	var req FeedbackRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	snap, ok := currentSnapshot(w, m)
	if !ok {
		return
	}
	if len(req.Rows) != len(req.Labels) {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("%d rows but %d labels", len(req.Rows), len(req.Labels)))
		return
	}
	if !s.validateRows(w, snap, req.Rows) {
		return
	}
	nClasses := snap.Train.Schema.NumClasses()
	for i, y := range req.Labels {
		if y < 0 || y >= nClasses {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("label %d (row %d) out of range [0, %d)", y, i, nClasses))
			return
		}
	}
	st, err := s.feedbackStore(m)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "feedback_store_failed", err.Error())
		return
	}
	asyncDrift := s.cfg.DriftThreshold > 0 && !s.cfg.SyncDriftEval
	var ev *driftEvaluator
	if asyncDrift {
		// Created (and primed from the store) before the append so the
		// ring never misses this batch.
		ev = s.driftEvalFor(m, snap, st)
	}
	seq, err := st.Append(req.Rows, req.Labels, nClasses)
	if err != nil {
		// Nothing was acknowledged: the rows may or may not have reached
		// the disk, and only a reopen (replay + truncate) can tell. 503
		// tells the client to retry; the store rejects everything until
		// then, so a retry cannot double-ingest.
		if errors.Is(err, feedback.ErrDirty) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "feedback_store_dirty", err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, "feedback_append_failed", err.Error())
		return
	}
	resp := FeedbackResponse{
		Version:   snap.Version,
		Seq:       seq,
		StoreRows: st.Len(),
		Durable:   st.Durable(),
	}
	switch {
	case asyncDrift:
		// The durable append is acknowledged now; the window evaluation
		// happens off-path at the evaluator's next gate, under the
		// server's retrain context rather than this request's (so a
		// client disconnect after the durable append no longer cancels
		// the drift check the rows earned). The ack echoes the newest
		// completed evaluation.
		evalSeq, pending := ev.noteIngest(snap, st, req.Rows, req.Labels, seq)
		if ds := m.drift.Load(); ds != nil {
			resp.DriftStd = ds.Std
			resp.DriftFeature = ds.Feature
			resp.Drifted = ds.Drifted
		}
		resp.DriftEvalSeq = evalSeq
		resp.DriftPending = pending
	case s.cfg.DriftThreshold > 0:
		// SyncDriftEval: the seed's inline evaluation, kept as the
		// determinism oracle and benchmark baseline.
		rows, labels := st.Window(s.cfg.DriftWindow)
		rep, err := core.WindowDisagreementCtx(r.Context(), snap.Ensemble.Models(), snap.Train.Schema,
			rows, labels, s.cfg.DriftThreshold, s.cfg.Feedback)
		if err != nil {
			// The rows are durable; a failed drift evaluation must not fail
			// the ingest. Report it and move on.
			s.logf("serve: model %q drift evaluation failed: %v", m.name, err)
		} else {
			m.drift.Store(&DriftStatus{Std: rep.PeakStd, Feature: rep.Name, Drifted: rep.Drifted, Seq: seq})
			resp.DriftStd = rep.PeakStd
			resp.DriftFeature = rep.Name
			resp.Drifted = rep.Drifted
			resp.DriftEvalSeq = seq
			if rep.Drifted {
				resp.RetrainTriggered = s.maybeDriftRetrain(m, snap, st)
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleModelStatus serves GET /v1/status and /v1/models/{model}/status.
func (s *Server) handleModelStatus(w http.ResponseWriter, _ *http.Request, m *Model) {
	writeJSON(w, http.StatusOK, s.modelStatus(m))
}

// maybeDriftRetrain starts a background retrain of m if none is running
// and the breaker admits one. It reports whether a retrain was started.
func (s *Server) maybeDriftRetrain(m *Model, snap *Snapshot, st *feedback.Store) bool {
	if !m.retrainBusy.CompareAndSwap(false, true) {
		return false
	}
	if ok, _ := m.breaker.Allow(); !ok {
		m.retrainBusy.Store(false)
		return false
	}
	m.retraining.Store(true)
	s.retrainWG.Add(1)
	go func() {
		defer s.retrainWG.Done()
		defer m.retraining.Store(false)
		defer m.retrainBusy.Store(false)
		defer m.breaker.Cancel()
		s.runDriftRetrain(m, snap, st)
	}()
	return true
}

// runDriftRetrain executes one drift-triggered retrain: fold the
// feedback-store rows past the snapshot's high-water mark into the
// training set, warm-start (refit shifted members, seed keyed by the
// attempt number so the result is reproducible cold from the replayed
// store), fall back to a full AutoML search when too much of the
// committee shifted, and publish on success. Failures keep the
// last-good snapshot, mark the model degraded and feed its breaker —
// identical policy to handleRetrain.
func (s *Server) runDriftRetrain(m *Model, snap *Snapshot, st *feedback.Store) {
	attempt := m.retrains.Add(1)
	ctx, cancel := context.WithTimeout(s.retrainCtx, s.cfg.RetrainTimeout)
	defer cancel()

	rows, labels := st.RowsAfter(snap.FeedbackRows)
	newTrain := snap.Train.Clone()
	for i, row := range rows {
		if err := newTrain.AppendRow(row, labels[i]); err != nil {
			// Ingest validation should make this unreachable; treat it as a
			// retrain failure, not a panic.
			s.driftRetrainFailed(m, snap, attempt, fmt.Errorf("fold feedback row %d: %w", i, err))
			return
		}
	}
	folded := snap.FeedbackRows + int64(len(rows))
	seed := s.cfg.AutoML.Seed + uint64(attempt)*131

	var ens *automl.Ensemble
	var err error
	if s.cfg.Fault.RetrainFailsFor(m.name, int(attempt)) {
		err = faultinject.ErrInjected
	} else {
		ens, err = s.warmStartOrFull(ctx, m, snap, newTrain, seed)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			// Server shutdown canceled the retrain; not a model failure.
			s.logf("serve: model %q drift retrain %d canceled by shutdown", m.name, attempt)
			return
		}
		s.driftRetrainFailed(m, snap, attempt, err)
		return
	}
	// Persist-before-publish is part of the verdict, as in handleRetrain:
	// an unpersistable result keeps last-good and feeds the breaker.
	if _, err := s.install(m, ens, newTrain, folded, seed); err != nil {
		m.breaker.Failure()
		s.logf("serve: model %q drift retrain %d trained but could not persist: %v", m.name, attempt, err)
		return
	}
	m.breaker.Success()
	m.driftRetrains.Add(1)
}

// warmStartOrFull tries the warm-start path and falls back to a full
// AutoML search when the committee shifted too much.
func (s *Server) warmStartOrFull(ctx context.Context, m *Model, snap *Snapshot, newTrain *data.Dataset, seed uint64) (*automl.Ensemble, error) {
	ws := core.WarmStartConfig{
		Feedback:         s.cfg.Feedback,
		ShiftTolerance:   s.cfg.DriftShiftTolerance,
		MaxRefitFraction: s.cfg.DriftMaxRefitFraction,
		RefitSeed:        seed,
		Workers:          s.cfg.Feedback.Workers,
	}
	// Reuse the snapshot's interpretation cache for the old-side shift
	// curves when it is current: /v1/ale and /v1/regions traffic since the
	// last publish has usually computed them already, and the warm start
	// is bit-identical with or without the cache.
	if ist := m.interp.Load(); ist != nil && ist.snap == snap {
		ws.OldCurves = ist.curves
	}
	ens, rep, err := core.WarmStartCtx(ctx, snap.Ensemble, snap.Train, newTrain, ws)
	if err != nil {
		return nil, fmt.Errorf("warm start: %w", err)
	}
	if !rep.FellBack {
		s.logf("serve: model %q warm-start retrain refitted %d/%d members (max shift %.4f)",
			m.name, len(rep.Shifted), rep.Members, rep.MaxShift)
		return ens, nil
	}
	s.logf("serve: model %q warm start fell back to full retrain (%d/%d members shifted)",
		m.name, len(rep.Shifted), rep.Members)
	mlCfg := s.cfg.AutoML
	mlCfg.Seed = seed
	return automl.RunCtx(ctx, newTrain, mlCfg)
}

// driftRetrainFailed applies the degradation policy for a failed drift
// retrain: last-good keeps serving, the model is marked degraded, the
// breaker counts the failure.
func (s *Server) driftRetrainFailed(m *Model, snap *Snapshot, attempt int64, err error) {
	m.breaker.Failure()
	reason := fmt.Sprintf("drift retrain %d failed: %v", attempt, err)
	m.degraded.Store(&reason)
	s.logf("serve: model %q degraded, keeping snapshot v%d: %s", m.name, snap.Version, reason)
}
