package data

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// FuzzReadCSV is the robustness contract for the only external-input
// boundary of the package: whatever bytes arrive, ReadCSV either returns
// a well-formed finite dataset or a structured error — it never panics,
// and malformed rows are reported as *RowError with the offending line
// (and column, for cell-level failures).
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b,label\n1,2,p\n3,4,n\n")
	f.Add("a,b,label\n1,2\n")         // truncated row
	f.Add("a,b,label\n1,xyz,p\n")     // non-numeric cell
	f.Add("a,b,label\nNaN,2,p\n")     // NaN literal
	f.Add("a,b,label\n1,+Inf,p\n")    // Inf literal
	f.Add("a,b,label\n-Inf,2,p\n")    // negative Inf literal
	f.Add("a,b,label\n\n1,2,p\n")     // empty line mid-file
	f.Add("a,b,label\n1,2,p,extra\n") // overlong row
	f.Add("")                         // no header
	f.Add("onlylabel\n1\n")           // too few columns
	f.Add("a,b,label\n\"1,2,p\n")     // unbalanced quote
	f.Add("a,b,label\r\n1,2,p\r\n")   // CRLF endings
	f.Add("a,b,label\n1e308,2,p\n")   // near-overflow float
	f.Add("a,b,label\n1e400,2,p\n")   // parses to +Inf
	f.Add("a,b,label\n 1 ,2,p\n")     // padded cell
	f.Add("a,,label\n1,2,p\n")        // empty header name

	f.Fuzz(func(t *testing.T, in string) {
		d, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			// A cell- or row-level failure must carry its position.
			var re *RowError
			if errors.As(err, &re) {
				if re.Line < 2 {
					t.Fatalf("RowError on line %d (data starts at line 2): %v", re.Line, err)
				}
				if re.Error() == "" {
					t.Fatal("RowError with empty message")
				}
			}
			return
		}
		// Success: the dataset must be internally consistent and finite.
		if len(d.X) != len(d.Y) {
			t.Fatalf("rows/labels misaligned: %d vs %d", len(d.X), len(d.Y))
		}
		nf := d.Schema.NumFeatures()
		if nf < 1 || d.Schema.NumClasses() < 0 {
			t.Fatalf("degenerate schema: %d features, %d classes", nf, d.Schema.NumClasses())
		}
		for i, row := range d.X {
			if len(row) != nf {
				t.Fatalf("row %d width %d, want %d", i, len(row), nf)
			}
			for j, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("row %d col %d: non-finite %v leaked through", i, j, v)
				}
			}
			if d.Y[i] < 0 || d.Y[i] >= d.Schema.NumClasses() {
				t.Fatalf("row %d label %d out of range [0,%d)", i, d.Y[i], d.Schema.NumClasses())
			}
		}
	})
}

// TestReadCSVStructuredErrors pins the error shapes the fuzz target
// relies on: each malformed input yields a *RowError pointing at the
// right line, and non-finite literals unwrap to ErrNonFinite.
func TestReadCSVStructuredErrors(t *testing.T) {
	cases := []struct {
		name      string
		in        string
		line      int
		column    string
		nonFinite bool
	}{
		{"truncated row", "a,b,label\n1,2,p\n3,4\n", 3, "", false},
		{"overlong row", "a,b,label\n1,2,p,q\n", 2, "", false},
		{"non-numeric cell", "a,b,label\n1,xyz,p\n", 2, "b", false},
		{"nan literal", "a,b,label\nNaN,2,p\n", 2, "a", true},
		{"inf literal", "a,b,label\n1,Inf,p\n", 2, "b", true},
		{"neg inf literal", "a,b,label\n1,-inf,p\n", 2, "b", true},
		// 1e400 overflows inside ParseFloat, so it is a parse error (with
		// the column attached), not an ErrNonFinite — either way it cannot
		// reach the dataset.
		{"overflow to inf", "a,b,label\n1e400,2,p\n", 2, "a", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(tc.in))
			var re *RowError
			if !errors.As(err, &re) {
				t.Fatalf("err = %v, want *RowError", err)
			}
			if re.Line != tc.line {
				t.Errorf("Line = %d, want %d", re.Line, tc.line)
			}
			if re.Column != tc.column {
				t.Errorf("Column = %q, want %q", re.Column, tc.column)
			}
			if got := errors.Is(err, ErrNonFinite); got != tc.nonFinite {
				t.Errorf("errors.Is(err, ErrNonFinite) = %v, want %v", got, tc.nonFinite)
			}
		})
	}
}

// TestReadCSVSkipsBlankLines documents encoding/csv's blank-line
// behavior at our boundary: fully empty lines are skipped, not errors.
func TestReadCSVSkipsBlankLines(t *testing.T) {
	d, err := ReadCSV(strings.NewReader("a,b,label\n\n1,2,p\n\n3,4,n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("got %d rows, want 2", d.Len())
	}
}
