package data

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/netml/alefb/internal/rng"
)

func testSchema() *Schema {
	return &Schema{
		Features: []Feature{
			{Name: "a", Min: 0, Max: 10},
			{Name: "b", Min: -1, Max: 1},
		},
		Classes: []string{"neg", "pos"},
	}
}

func makeDataset(n int, r *rng.Rand) *Dataset {
	d := New(testSchema())
	for i := 0; i < n; i++ {
		d.Append([]float64{r.Uniform(0, 10), r.Uniform(-1, 1)}, r.Intn(2))
	}
	return d
}

func TestSchemaLookup(t *testing.T) {
	s := testSchema()
	if s.NumFeatures() != 2 || s.NumClasses() != 2 {
		t.Fatalf("schema counts wrong: %d features %d classes", s.NumFeatures(), s.NumClasses())
	}
	if s.FeatureIndex("b") != 1 {
		t.Fatal("FeatureIndex(b) != 1")
	}
	if s.FeatureIndex("missing") != -1 {
		t.Fatal("FeatureIndex(missing) != -1")
	}
}

func TestSchemaCloneIsDeep(t *testing.T) {
	s := testSchema()
	c := s.Clone()
	c.Features[0].Name = "changed"
	c.Classes[0] = "changed"
	if s.Features[0].Name != "a" || s.Classes[0] != "neg" {
		t.Fatal("Clone shared backing arrays")
	}
}

func TestAppendPanicsOnWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Append with wrong width did not panic")
		}
	}()
	New(testSchema()).Append([]float64{1}, 0)
}

func TestSubsetAndClone(t *testing.T) {
	d := makeDataset(10, rng.New(1))
	s := d.Subset([]int{2, 5, 7})
	if s.Len() != 3 {
		t.Fatalf("Subset len = %d", s.Len())
	}
	if s.X[1][0] != d.X[5][0] || s.Y[2] != d.Y[7] {
		t.Fatal("Subset rows misaligned")
	}
	c := d.Clone()
	c.X[0][0] = 999
	if d.X[0][0] == 999 {
		t.Fatal("Clone shares row storage")
	}
}

func TestConcat(t *testing.T) {
	r := rng.New(2)
	a, b := makeDataset(4, r), makeDataset(6, r)
	c, err := a.Concat(b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 10 {
		t.Fatalf("Concat len = %d", c.Len())
	}
	if c.X[4][0] != b.X[0][0] {
		t.Fatal("Concat order wrong")
	}
	// Appending to the concatenation must not disturb the sources.
	c.Append([]float64{1, 0}, 0)
	if a.Len() != 4 || b.Len() != 6 {
		t.Fatal("Concat aliased source datasets")
	}
}

func TestClassCounts(t *testing.T) {
	d := New(testSchema())
	d.Append([]float64{1, 0}, 0)
	d.Append([]float64{2, 0}, 1)
	d.Append([]float64{3, 0}, 1)
	counts := d.ClassCounts()
	if counts[0] != 1 || counts[1] != 2 {
		t.Fatalf("ClassCounts = %v", counts)
	}
}

func TestColumnAndObservedRange(t *testing.T) {
	d := New(testSchema())
	d.Append([]float64{3, 0.5}, 0)
	d.Append([]float64{7, -0.5}, 1)
	col := d.Column(0)
	if col[0] != 3 || col[1] != 7 {
		t.Fatalf("Column = %v", col)
	}
	lo, hi := d.ObservedRange(1)
	if lo != -0.5 || hi != 0.5 {
		t.Fatalf("ObservedRange = %v..%v", lo, hi)
	}
	empty := New(testSchema())
	lo, hi = empty.ObservedRange(0)
	if lo != 0 || hi != 10 {
		t.Fatalf("empty ObservedRange should fall back to schema, got %v..%v", lo, hi)
	}
}

func TestSplitSizes(t *testing.T) {
	d := makeDataset(100, rng.New(3))
	a, b := d.Split(0.4, rng.New(4))
	if a.Len() != 40 || b.Len() != 60 {
		t.Fatalf("Split sizes = %d/%d", a.Len(), b.Len())
	}
}

func TestStratifiedSplitPreservesProportions(t *testing.T) {
	d := New(testSchema())
	r := rng.New(5)
	for i := 0; i < 900; i++ {
		d.Append([]float64{r.Float64(), 0}, 0)
	}
	for i := 0; i < 100; i++ {
		d.Append([]float64{r.Float64(), 0}, 1)
	}
	a, b := d.StratifiedSplit(0.5, r)
	ca, cb := a.ClassCounts(), b.ClassCounts()
	if ca[0] != 450 || ca[1] != 50 || cb[0] != 450 || cb[1] != 50 {
		t.Fatalf("stratified counts a=%v b=%v", ca, cb)
	}
}

func TestKChunksPartition(t *testing.T) {
	d := makeDataset(103, rng.New(6))
	chunks, err := d.KChunks(20, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 20 {
		t.Fatalf("got %d chunks", len(chunks))
	}
	total := 0
	for _, c := range chunks {
		total += c.Len()
		if c.Len() < 5 || c.Len() > 6 {
			t.Fatalf("chunk size %d not near-equal", c.Len())
		}
	}
	if total != 103 {
		t.Fatalf("chunks cover %d rows, want 103", total)
	}
}

func TestFoldsCoverEachRowOnce(t *testing.T) {
	d := makeDataset(50, rng.New(8))
	folds, err := d.Folds(5, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("got %d folds", len(folds))
	}
	valTotal := 0
	for _, f := range folds {
		valTotal += f.Val.Len()
		if f.Train.Len()+f.Val.Len() != 50 {
			t.Fatalf("fold does not partition: %d + %d", f.Train.Len(), f.Val.Len())
		}
	}
	if valTotal != 50 {
		t.Fatalf("validation rows total %d, want 50", valTotal)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := makeDataset(25, rng.New(10))
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("round trip lost rows: %d vs %d", got.Len(), d.Len())
	}
	for i := range d.X {
		for j := range d.X[i] {
			if got.X[i][j] != d.X[i][j] {
				t.Fatalf("row %d col %d: %v != %v", i, j, got.X[i][j], d.X[i][j])
			}
		}
		if got.Schema.Classes[got.Y[i]] != d.Schema.Classes[d.Y[i]] {
			t.Fatalf("row %d label mismatch", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                 // no header
		"onlylabel\n1\n",   // fewer than 2 columns
		"a,label\nxyz,p\n", // non-numeric feature
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("ReadCSV(%q) should fail", in)
		}
	}
}

func TestReadCSVRangesObserved(t *testing.T) {
	in := "f,label\n1,a\n5,b\n3,a\n"
	d, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	f := d.Schema.Features[0]
	if f.Min != 1 || f.Max != 5 {
		t.Fatalf("range = %v..%v, want 1..5", f.Min, f.Max)
	}
	if len(d.Schema.Classes) != 2 {
		t.Fatalf("classes = %v", d.Schema.Classes)
	}
}

func TestShuffleKeepsPairs(t *testing.T) {
	d := New(testSchema())
	for i := 0; i < 100; i++ {
		d.Append([]float64{float64(i), 0}, i%2)
	}
	d.Shuffle(rng.New(11))
	for i := range d.X {
		if int(d.X[i][0])%2 != d.Y[i] {
			t.Fatal("Shuffle broke row/label pairing")
		}
	}
}

func TestQuickSplitPartition(t *testing.T) {
	r := rng.New(12)
	f := func(n uint8, fr float64) bool {
		m := int(n%200) + 1
		frac := math.Mod(math.Abs(fr), 1)
		d := makeDataset(m, r)
		a, b := d.Split(frac, r)
		return a.Len()+b.Len() == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDescribe(t *testing.T) {
	d := makeDataset(50, rng.New(14))
	out := d.Describe()
	for _, want := range []string{"50 rows", "class", "feature", "observed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Describe missing %q:\n%s", want, out)
		}
	}
	// Empty dataset must not panic or divide by zero.
	empty := New(testSchema())
	if out := empty.Describe(); !strings.Contains(out, "0 rows") {
		t.Fatalf("empty Describe:\n%s", out)
	}
}
