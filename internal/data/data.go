// Package data provides the tabular dataset abstraction shared by the ML
// model zoo, the AutoML engine, the interpretation algorithms, and the
// feedback solution.
//
// A Dataset is a dense numeric feature matrix with integer class labels
// and a schema describing each feature's name and valid range R(X_s). The
// feedback algorithm of the paper operates on those ranges, so the schema
// is a first-class citizen here rather than an afterthought.
package data

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/netml/alefb/internal/rng"
)

// Feature describes a single input variable.
type Feature struct {
	// Name is the human-readable identifier used in feedback explanations
	// (for example "config.link_rate").
	Name string
	// Min and Max bound the domain R(X_s) the feedback algorithm may
	// suggest samples from. They are not enforced on stored values but
	// every generator in this repository keeps values inside them.
	Min, Max float64
	// Integer marks features that only take integral values (ports,
	// packet counts). Samplers round suggested values for such features.
	Integer bool
}

// Schema describes a dataset's features and class labels.
type Schema struct {
	Features []Feature
	// Classes holds the label names; label k corresponds to Classes[k].
	Classes []string
}

// NumFeatures returns the number of input variables.
func (s *Schema) NumFeatures() int { return len(s.Features) }

// NumClasses returns the number of distinct labels.
func (s *Schema) NumClasses() int { return len(s.Classes) }

// FeatureIndex returns the position of the named feature, or -1.
func (s *Schema) FeatureIndex(name string) int {
	for i, f := range s.Features {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	c := &Schema{
		Features: append([]Feature(nil), s.Features...),
		Classes:  append([]string(nil), s.Classes...),
	}
	return c
}

// Dataset is a dense labelled dataset. X[i] is the i-th row; Y[i] its
// class label, indexing Schema.Classes.
type Dataset struct {
	Schema *Schema
	X      [][]float64
	Y      []int
}

// New returns an empty dataset over the given schema.
func New(schema *Schema) *Dataset {
	return &Dataset{Schema: schema}
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return len(d.X) }

// AppendRow adds a row, rejecting width mismatches and labels outside
// [0, NumClasses) with an error. This is the checked boundary for rows
// that originate outside the process (parsed files, network input); the
// CSV loader and every other external-input path use it.
func (d *Dataset) AppendRow(x []float64, y int) error {
	if len(x) != d.Schema.NumFeatures() {
		return fmt.Errorf("data: row has %d features, schema has %d", len(x), d.Schema.NumFeatures())
	}
	if y < 0 || y >= d.Schema.NumClasses() {
		return fmt.Errorf("data: label %d out of range [0, %d)", y, d.Schema.NumClasses())
	}
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
	return nil
}

// Append adds a row built by trusted in-process code (generators, tests,
// the feedback sampler — all of which construct rows from the same schema
// they append to). It panics on arity mismatch: at such call sites that
// is always a programming error the caller cannot recover from. Rows from
// external input go through AppendRow instead.
func (d *Dataset) Append(x []float64, y int) {
	if len(x) != d.Schema.NumFeatures() {
		panic(fmt.Sprintf("data: row has %d features, schema has %d", len(x), d.Schema.NumFeatures()))
	}
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
}

// Clone returns a deep copy of the dataset (the schema is shared).
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{Schema: d.Schema, X: make([][]float64, len(d.X)), Y: append([]int(nil), d.Y...)}
	for i, row := range d.X {
		c.X[i] = append([]float64(nil), row...)
	}
	return c
}

// Subset returns a new dataset containing the given row indices. Rows are
// shared, not copied; callers that mutate rows must Clone first.
func (d *Dataset) Subset(idx []int) *Dataset {
	s := &Dataset{Schema: d.Schema, X: make([][]float64, len(idx)), Y: make([]int, len(idx))}
	for i, j := range idx {
		s.X[i] = d.X[j]
		s.Y[i] = d.Y[j]
	}
	return s
}

// Concat returns a new dataset with the rows of d followed by the rows of
// other. Both must share a compatible schema (same feature count); an
// incompatible schema is reported as an error, since the second dataset
// routinely comes from outside the caller's control (a loaded file, a
// feedback round).
func (d *Dataset) Concat(other *Dataset) (*Dataset, error) {
	if other.Schema.NumFeatures() != d.Schema.NumFeatures() {
		return nil, fmt.Errorf("data: Concat with incompatible schema: %d features vs %d",
			d.Schema.NumFeatures(), other.Schema.NumFeatures())
	}
	c := &Dataset{
		Schema: d.Schema,
		X:      append(append([][]float64{}, d.X...), other.X...),
		Y:      append(append([]int{}, d.Y...), other.Y...),
	}
	return c, nil
}

// Shuffle permutes rows in place.
func (d *Dataset) Shuffle(r *rng.Rand) {
	r.Shuffle(d.Len(), func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
}

// ClassCounts returns the number of rows per class label.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Schema.NumClasses())
	for _, y := range d.Y {
		counts[y]++
	}
	return counts
}

// Column returns a copy of feature j's values.
func (d *Dataset) Column(j int) []float64 {
	col := make([]float64, d.Len())
	for i, row := range d.X {
		col[i] = row[j]
	}
	return col
}

// ObservedRange returns the min and max of feature j over the data, or the
// schema range if the dataset is empty.
func (d *Dataset) ObservedRange(j int) (lo, hi float64) {
	if d.Len() == 0 {
		f := d.Schema.Features[j]
		return f.Min, f.Max
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, row := range d.X {
		if row[j] < lo {
			lo = row[j]
		}
		if row[j] > hi {
			hi = row[j]
		}
	}
	return lo, hi
}

// Split partitions the dataset into two parts with the first containing
// round(frac*len) rows, after an in-place shuffle driven by r. The paper
// uses this for its train/test/pool splits.
func (d *Dataset) Split(frac float64, r *rng.Rand) (a, b *Dataset) {
	idx := r.Perm(d.Len())
	cut := int(math.Round(frac * float64(d.Len())))
	if cut < 0 {
		cut = 0
	}
	if cut > d.Len() {
		cut = d.Len()
	}
	return d.Subset(idx[:cut]), d.Subset(idx[cut:])
}

// StratifiedSplit partitions the dataset like Split but preserves per-class
// proportions in both halves.
func (d *Dataset) StratifiedSplit(frac float64, r *rng.Rand) (a, b *Dataset) {
	byClass := make(map[int][]int)
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	classes := make([]int, 0, len(byClass))
	for y := range byClass {
		classes = append(classes, y)
	}
	sort.Ints(classes)
	var aIdx, bIdx []int
	for _, y := range classes {
		idx := byClass[y]
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		cut := int(math.Round(frac * float64(len(idx))))
		aIdx = append(aIdx, idx[:cut]...)
		bIdx = append(bIdx, idx[cut:]...)
	}
	r.Shuffle(len(aIdx), func(i, j int) { aIdx[i], aIdx[j] = aIdx[j], aIdx[i] })
	r.Shuffle(len(bIdx), func(i, j int) { bIdx[i], bIdx[j] = bIdx[j], bIdx[i] })
	return d.Subset(aIdx), d.Subset(bIdx)
}

// KChunks splits the dataset into k near-equal random chunks, as the paper
// does to build its 20 test sets for statistical significance. k typically
// arrives from experiment configuration (a flag, a config file), so an
// invalid value is an input error, not a programming error.
func (d *Dataset) KChunks(k int, r *rng.Rand) ([]*Dataset, error) {
	if k <= 0 {
		return nil, fmt.Errorf("data: KChunks needs k > 0, got %d", k)
	}
	idx := r.Perm(d.Len())
	out := make([]*Dataset, 0, k)
	for i := 0; i < k; i++ {
		lo := i * d.Len() / k
		hi := (i + 1) * d.Len() / k
		out = append(out, d.Subset(idx[lo:hi]))
	}
	return out, nil
}

// Folds returns k cross-validation folds as (train, validation) pairs.
// Like KChunks, k is configuration input and is validated, not asserted.
func (d *Dataset) Folds(k int, r *rng.Rand) ([]Fold, error) {
	if k < 2 {
		return nil, fmt.Errorf("data: Folds needs k >= 2, got %d", k)
	}
	idx := r.Perm(d.Len())
	folds := make([]Fold, 0, k)
	for i := 0; i < k; i++ {
		lo := i * d.Len() / k
		hi := (i + 1) * d.Len() / k
		val := idx[lo:hi]
		train := make([]int, 0, d.Len()-len(val))
		train = append(train, idx[:lo]...)
		train = append(train, idx[hi:]...)
		folds = append(folds, Fold{Train: d.Subset(train), Val: d.Subset(val)})
	}
	return folds, nil
}

// Fold is one cross-validation split.
type Fold struct {
	Train, Val *Dataset
}

// Describe renders a human-readable summary of the dataset: row/class
// counts and per-feature observed min/mean/max — the first thing an
// operator wants to see before training.
func (d *Dataset) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d rows, %d features, %d classes\n", d.Len(), d.Schema.NumFeatures(), d.Schema.NumClasses())
	counts := d.ClassCounts()
	for c, name := range d.Schema.Classes {
		pct := 0.0
		if d.Len() > 0 {
			pct = 100 * float64(counts[c]) / float64(d.Len())
		}
		fmt.Fprintf(&sb, "  class %-14s %6d (%5.1f%%)\n", name, counts[c], pct)
	}
	for j, f := range d.Schema.Features {
		lo, hi := d.ObservedRange(j)
		mean := math.NaN()
		if d.Len() > 0 {
			sum := 0.0
			for _, row := range d.X {
				sum += row[j]
			}
			mean = sum / float64(d.Len())
		}
		fmt.Fprintf(&sb, "  feature %-18s observed [%.4g, %.4g] mean %.4g (schema [%.4g, %.4g])\n",
			f.Name, lo, hi, mean, f.Min, f.Max)
	}
	return sb.String()
}

// WriteCSV writes the dataset with a header row: feature names then
// "label" (the class name, not the index).
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, d.Schema.NumFeatures()+1)
	for _, f := range d.Schema.Features {
		header = append(header, f.Name)
	}
	header = append(header, "label")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("data: write header: %w", err)
	}
	rec := make([]string, len(header))
	for i, row := range d.X {
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		rec[len(rec)-1] = d.Schema.Classes[d.Y[i]]
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("data: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// RowError is the structured error ReadCSV reports for a malformed cell
// or row: it pinpoints the 1-based line and the offending column so an
// operator can fix the input, and unwraps to the underlying cause.
type RowError struct {
	// Line is the 1-based line number in the input (the header is line 1).
	Line int
	// Column is the column name from the header, or "" for whole-row
	// problems (wrong field count).
	Column string
	// Err is the underlying cause.
	Err error
}

// Error renders the location and cause.
func (e *RowError) Error() string {
	if e.Column == "" {
		return fmt.Sprintf("data: line %d: %v", e.Line, e.Err)
	}
	return fmt.Sprintf("data: line %d column %q: %v", e.Line, e.Column, e.Err)
}

// Unwrap returns the underlying cause.
func (e *RowError) Unwrap() error { return e.Err }

// ErrNonFinite is wrapped by RowError when a cell parses as NaN or ±Inf.
// Non-finite feature values would silently poison every downstream fit
// (distances, split gains and probabilities all become NaN), so the
// loader rejects them at the boundary.
var ErrNonFinite = errors.New("non-finite value")

// ReadCSV reads a dataset written by WriteCSV. The schema is reconstructed
// from the header and observed data: ranges become the observed min/max.
// Malformed input — truncated rows, non-numeric cells, NaN/Inf literals —
// is reported as a *RowError naming the line and column; the loader never
// panics on hostile input (fuzz-tested).
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // row width is checked below, with a RowError
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("data: read header: %w", err)
	}
	if len(header) < 2 {
		return nil, errors.New("data: CSV needs at least one feature and a label column")
	}
	nf := len(header) - 1
	schema := &Schema{Features: make([]Feature, nf)}
	for j := 0; j < nf; j++ {
		schema.Features[j] = Feature{Name: header[j], Min: math.Inf(1), Max: math.Inf(-1)}
	}
	classIdx := map[string]int{}
	d := New(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, &RowError{Line: line, Err: err}
		}
		if len(rec) != nf+1 {
			return nil, &RowError{Line: line, Err: fmt.Errorf("has %d fields, want %d", len(rec), nf+1)}
		}
		row := make([]float64, nf)
		for j := 0; j < nf; j++ {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, &RowError{Line: line, Column: header[j], Err: err}
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, &RowError{Line: line, Column: header[j], Err: fmt.Errorf("%w %q", ErrNonFinite, rec[j])}
			}
			row[j] = v
			if v < schema.Features[j].Min {
				schema.Features[j].Min = v
			}
			if v > schema.Features[j].Max {
				schema.Features[j].Max = v
			}
		}
		label := rec[nf]
		k, ok := classIdx[label]
		if !ok {
			k = len(schema.Classes)
			classIdx[label] = k
			schema.Classes = append(schema.Classes, label)
		}
		if err := d.AppendRow(row, k); err != nil {
			return nil, &RowError{Line: line, Err: err}
		}
	}
	return d, nil
}
