// Package parallel is the repository's deterministic execution layer: a
// small, stdlib-only worker pool used by the AutoML search, the committee
// ALE computation and the experiment harness.
//
// Determinism is the design constraint that shapes the API. Every hot path
// in this repository must produce bit-identical results whether it runs on
// one worker or on N, so the pool never lets scheduling order leak into
// results:
//
//   - tasks are identified by index, and results are committed in index
//     order regardless of completion order;
//   - when several tasks fail, the error of the lowest-indexed task is
//     returned, which is also the error a serial run would have seen first;
//   - callers must give each task its own rng.Rand derived from the task
//     index (rng.Derive), never a generator shared across tasks.
//
// Workers <= 0 selects runtime.GOMAXPROCS(0); Workers == 1 runs the tasks
// inline on the calling goroutine, so a serial run is genuinely serial.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values <= 0 select
// runtime.GOMAXPROCS(0), everything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// panicError carries a recovered panic from a worker goroutine to the
// calling goroutine, preserving the worker's stack for the crash report.
type panicError struct {
	value any
	stack []byte
}

func (p *panicError) Error() string {
	return fmt.Sprintf("parallel: task panicked: %v\n%s", p.value, p.stack)
}

// Map runs fn(i) for every i in [0, n) on up to `workers` goroutines and
// returns the results in index order. The first error cancels the tasks
// that have not started yet and is returned; the result slice is only
// meaningful when the error is nil. On the success path results are
// bit-identical for every worker count. On the failure path the returned
// error is the lowest-indexed error among the tasks that ran — with one
// worker that is exactly the serial short-circuit error; with several
// workers, cancellation means which tasks ran (and hence which error
// surfaces when more than one task would fail) can depend on scheduling.
// A panic in any task is re-raised on the calling goroutine with the
// worker's stack attached.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		// Inline serial path: exact short-circuit semantics, native panics.
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return out, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next    atomic.Int64 // next task index to claim
		stopped atomic.Bool  // set on first failure; unstarted tasks skip
		errs    = make([]error, n)
		wg      sync.WaitGroup
	)
	run := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				buf := make([]byte, 64<<10)
				errs[i] = &panicError{value: v, stack: buf[:runtime.Stack(buf, false)]}
				stopped.Store(true)
			}
		}()
		v, err := fn(i)
		if err != nil {
			errs[i] = err
			stopped.Store(true)
			return
		}
		out[i] = v
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stopped.Load() {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err == nil {
			continue
		}
		if pe, ok := err.(*panicError); ok {
			panic(pe.Error())
		}
		return out, err
	}
	return out, nil
}

// ForEach runs fn(i) for every i in [0, n) on up to `workers` goroutines.
// Error and panic semantics match Map.
func ForEach(n, workers int, fn func(i int) error) error {
	_, err := Map(n, workers, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
