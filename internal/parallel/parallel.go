// Package parallel is the repository's deterministic execution layer: a
// small, stdlib-only worker pool used by the AutoML search, the committee
// ALE computation and the experiment harness.
//
// Determinism is the design constraint that shapes the API. Every hot path
// in this repository must produce bit-identical results whether it runs on
// one worker or on N, so the pool never lets scheduling order leak into
// results:
//
//   - tasks are identified by index, and results are committed in index
//     order regardless of completion order;
//   - when several tasks fail, the error of the lowest-indexed task is
//     returned, which is also the error a serial run would have seen first;
//   - callers must give each task its own rng.Rand derived from the task
//     index (rng.Derive), never a generator shared across tasks.
//
// Failure is part of the contract, not an afterthought. A panic in a task
// never crashes the process: it is recovered, wrapped in a *PanicError
// that preserves the worker's stack, and returned like any other task
// error (lowest index wins). The context-aware variants MapCtx/ForEachCtx
// additionally honor cancellation at task boundaries: once the context is
// done no new task starts, and ctx.Err() is returned unless a task that
// did run failed at a lower index.
//
// Workers <= 0 selects runtime.GOMAXPROCS(0); Workers == 1 runs the tasks
// inline on the calling goroutine, so a serial run is genuinely serial.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values <= 0 select
// runtime.GOMAXPROCS(0), everything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// PanicError is the typed error a recovered task panic surfaces as. It
// preserves the panicking goroutine's stack so crash reports stay as
// useful as the raw panic would have been, while letting the caller
// decide whether the failure is fatal (most callers degrade instead).
type PanicError struct {
	// Value is the value the task passed to panic().
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error renders the panic value and the preserved stack.
func (p *PanicError) Error() string {
	return fmt.Sprintf("parallel: task panicked: %v\n%s", p.Value, p.Stack)
}

// recoverAsError converts a recovered panic value into a *PanicError with
// the current goroutine's stack attached.
func recoverAsError(v any) *PanicError {
	buf := make([]byte, 64<<10)
	return &PanicError{Value: v, Stack: buf[:runtime.Stack(buf, false)]}
}

// Map runs fn(i) for every i in [0, n) on up to `workers` goroutines and
// returns the results in index order. The first error cancels the tasks
// that have not started yet and is returned; on the failure path only the
// results of tasks that completed without error are meaningful. On the
// success path results are bit-identical for every worker count. On the
// failure path the returned error is the lowest-indexed error among the
// tasks that ran — with one worker that is exactly the serial
// short-circuit error; with several workers, cancellation means which
// tasks ran (and hence which error surfaces when more than one task would
// fail) can depend on scheduling. A panic in any task is recovered and
// returned as a *PanicError; it never propagates to the calling
// goroutine.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), n, workers, fn)
}

// MapCtx is Map with cooperative cancellation: once ctx is done, no new
// task starts. Tasks already running are not interrupted — fits and
// predictions in this repository are pure CPU loops — so cancellation
// latency is one task, not one batch. When the context expires the
// returned error is ctx.Err() (context.Canceled or
// context.DeadlineExceeded), unless a task that did run failed at some
// index, in which case the lowest-indexed task error wins as usual.
func MapCtx[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	errs := make([]error, n)
	run := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				errs[i] = recoverAsError(v)
			}
		}()
		v, err := fn(i)
		if err != nil {
			errs[i] = err
			return
		}
		out[i] = v
	}

	if workers == 1 {
		// Inline serial path: exact short-circuit semantics.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			run(i)
			if errs[i] != nil {
				return out, errs[i]
			}
		}
		return out, nil
	}

	var (
		next    atomic.Int64 // next task index to claim
		stopped atomic.Bool  // set on first failure; unstarted tasks skip
		wg      sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stopped.Load() || ctx.Err() != nil {
					return
				}
				run(i)
				if errs[i] != nil {
					stopped.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, ctx.Err()
}

// ForEach runs fn(i) for every i in [0, n) on up to `workers` goroutines.
// Error and panic semantics match Map.
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), n, workers, fn)
}

// ForEachCtx runs fn(i) for every i in [0, n) with cooperative
// cancellation. Error, panic and cancellation semantics match MapCtx.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	_, err := MapCtx(ctx, n, workers, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
