package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		got, err := Map(50, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, 4, func(i int) (int, error) { t.Fatal("fn called"); return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Map(0) = %v, %v", got, err)
	}
}

func TestMapSerialShortCircuit(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	_, err := Map(10, 1, func(i int) (int, error) {
		ran = append(ran, i)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(ran) != 4 {
		t.Fatalf("serial run executed tasks %v; want exactly 0..3", ran)
	}
}

func TestMapParallelErrorCancels(t *testing.T) {
	var started atomic.Int64
	_, err := Map(10_000, 4, func(i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, fmt.Errorf("task %d failed", i)
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("err = %v", err)
	}
	// Cancellation is cooperative: already-claimed tasks finish, but the
	// failure must stop the pool well before all 10k tasks start.
	if n := started.Load(); n == 10_000 {
		t.Fatalf("all %d tasks started despite early error", n)
	}
}

func TestMapReturnsLowestObservedError(t *testing.T) {
	// With one worker per failing task and a barrier forcing both failures
	// to run, the lowest-indexed error must win regardless of timing.
	var gate sync.WaitGroup
	gate.Add(2)
	_, err := Map(2, 2, func(i int) (int, error) {
		gate.Done()
		gate.Wait() // both tasks are certainly running
		return 0, fmt.Errorf("task %d", i)
	})
	if err == nil || err.Error() != "task 0" {
		t.Fatalf("err = %v, want task 0", err)
	}
}

// TestMapPanicIsError is the regression test for the old behavior of
// re-raising worker panics on the caller's goroutine: a panicking task
// must not crash the process, it must surface as a typed *PanicError
// carrying the panic value and the worker's stack.
func TestMapPanicIsError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(8, workers, func(i int) (int, error) {
			if i == 2 {
				panic("kaboom")
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic did not surface as an error", workers)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %T %v, want *PanicError", workers, err, err)
		}
		if fmt.Sprint(pe.Value) != "kaboom" {
			t.Fatalf("workers=%d: panic value = %v", workers, pe.Value)
		}
		if !strings.Contains(string(pe.Stack), "parallel") {
			t.Fatalf("workers=%d: stack not preserved: %q", workers, pe.Stack)
		}
	}
}

// TestMapPanicLowestIndexWins forces a panic and a plain error to both run
// and checks the deterministic lowest-index selection treats them alike.
func TestMapPanicLowestIndexWins(t *testing.T) {
	var gate sync.WaitGroup
	gate.Add(2)
	_, err := Map(2, 2, func(i int) (int, error) {
		gate.Done()
		gate.Wait()
		if i == 0 {
			panic("first")
		}
		return 0, errors.New("second")
	})
	var pe *PanicError
	if !errors.As(err, &pe) || fmt.Sprint(pe.Value) != "first" {
		t.Fatalf("err = %v, want panic of task 0", err)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(100, 8, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 99*100/2 {
		t.Fatalf("sum = %d", sum.Load())
	}
	boom := errors.New("boom")
	if err := ForEach(4, 2, func(i int) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

// TestStress hammers the pool with many tiny tasks and shared-state
// mutation through the result slice; designed to run under -race.
func TestStress(t *testing.T) {
	const n = 5000
	for round := 0; round < 4; round++ {
		got, err := Map(n, 16, func(i int) ([]int, error) {
			out := make([]int, 3)
			for j := range out {
				out[j] = i + j
			}
			return out, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v[0] != i || v[2] != i+2 {
				t.Fatalf("round %d: got[%d] = %v", round, i, v)
			}
		}
	}
}
