package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/netml/alefb/internal/testutil"
)

func TestMapCtxDeadline(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		var started atomic.Int64
		_, err := MapCtx(ctx, 1_000_000, workers, func(i int) (int, error) {
			started.Add(1)
			time.Sleep(200 * time.Microsecond)
			return i, nil
		})
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("workers=%d: err = %v, want DeadlineExceeded", workers, err)
		}
		if n := started.Load(); n == 1_000_000 {
			t.Fatalf("workers=%d: all tasks ran despite expired deadline", workers)
		}
	}
}

func TestMapCtxCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var started atomic.Int64
		_, err := MapCtx(ctx, 100, workers, func(i int) (int, error) {
			started.Add(1)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want Canceled", workers, err)
		}
		// With several workers a task may be claimed before the first ctx
		// check, but a pre-cancelled context must stop the pool almost
		// immediately.
		if n := started.Load(); n > int64(Workers(workers)) {
			t.Fatalf("workers=%d: %d tasks ran on a cancelled context", workers, n)
		}
	}
}

// TestMapCtxTaskErrorBeatsCancellation: a task error at a lower index wins
// over the context error, keeping error selection deterministic.
func TestMapCtxTaskErrorBeatsCancellation(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	_, err := MapCtx(ctx, 10, 1, func(i int) (int, error) {
		if i == 0 {
			cancel()
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want task error to win", err)
	}
}

func TestMapCtxSuccessMatchesMap(t *testing.T) {
	want, err := Map(100, 1, func(i int) (int, error) { return 3 * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		got, err := MapCtx(context.Background(), 100, workers, func(i int) (int, error) { return 3 * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d]=%d want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestMapCtxNoGoroutineLeak checks the pool drains its workers after a
// deadline expiry — the acceptance criterion for deadline handling.
func TestMapCtxNoGoroutineLeak(t *testing.T) {
	defer testutil.LeakCheck(t)()
	for round := 0; round < 10; round++ {
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Microsecond)
		_, _ = MapCtx(ctx, 10_000, 8, func(i int) (int, error) {
			time.Sleep(50 * time.Microsecond)
			return i, nil
		})
		cancel()
	}
}

func TestForEachCtx(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEachCtx(ctx, 100, 4, func(i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if err := ForEachCtx(context.Background(), 100, 4, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
