// Command firewallgen generates the synthetic Internet-firewall dataset
// (the UCI "Internet Firewall Data" stand-in) as CSV.
//
// Usage:
//
//	firewallgen -n 65532 -seed 1 -o firewall.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/netml/alefb/internal/firewall"
	"github.com/netml/alefb/internal/rng"
)

// version identifies the generator build; bump when the synthetic
// distribution changes.
const version = "alefb-firewallgen 0.5.0"

func main() {
	var (
		n       = flag.Int("n", 10000, "number of rows")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("o", "", "output CSV path (default stdout)")
		showVer = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version)
		return
	}

	d := firewall.Generate(*n, rng.New(*seed))
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := d.WriteCSV(w); err != nil {
		fatal(err)
	}
	counts := d.ClassCounts()
	fmt.Fprintf(os.Stderr, "generated %d rows:", d.Len())
	for c, name := range d.Schema.Classes {
		fmt.Fprintf(os.Stderr, " %s=%d", name, counts[c])
	}
	fmt.Fprintln(os.Stderr)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "firewallgen:", err)
	os.Exit(1)
}
