// Command alefb runs the full interpretable-feedback workflow on any CSV
// dataset: train AutoML, report accuracy, print the per-feature
// disagreement analysis with human-readable explanations, and emit
// suggested sample points.
//
// Usage:
//
//	alefb -train data.csv                       # train + explain
//	alefb -train data.csv -cross 10             # Cross-ALE committee
//	alefb -train data.csv -suggest 100 -o s.csv # write suggestions
//
// The CSV format is the one screamgen/firewallgen emit: a header row of
// feature names plus a final "label" column.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"

	"github.com/netml/alefb"
	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/rng"
)

// version identifies the CLI build; bump alongside workflow changes.
const version = "alefb 0.7.0"

func main() {
	var (
		trainPath  = flag.String("train", "", "training CSV (required)")
		testPath   = flag.String("test", "", "held-out test CSV (optional)")
		cross      = flag.Int("cross", 0, "use a Cross-ALE committee of this many AutoML runs (0 = Within-ALE)")
		bins       = flag.Int("bins", 32, "ALE grid resolution")
		threshold  = flag.Float64("threshold", 0, "disagreement threshold T (0 = median heuristic)")
		suggestN   = flag.Int("suggest", 0, "number of sample suggestions to emit")
		out        = flag.String("o", "", "CSV path for the suggestions (default stdout)")
		seed       = flag.Uint64("seed", 1, "random seed")
		candidates = flag.Int("budget", 24, "AutoML pipelines to evaluate")
		workers    = flag.Int("workers", 0, "worker goroutines for AutoML search and ALE committees (0 = all cores, 1 = serial; results are identical either way)")
		engine     = flag.String("trainengine", "presort", "tree-family training engine: presort (exact) or hist (histogram-binned split finding, faster on larger datasets)")
		savePath   = flag.String("save", "", "save the trained ensemble description to this JSON file")
		loadPath   = flag.String("load", "", "load an ensemble description instead of searching (refits on -train)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile (pprof) to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (pprof) to this file on exit")
		showVer    = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version)
		return
	}
	if *trainPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer writeMemProfile(*memprofile)
	}

	train, err := loadCSV(*trainPath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %s:\n%s", *trainPath, train.Describe())

	trainEngine, err := alefb.ParseTrainEngine(*engine)
	if err != nil {
		fatal(err)
	}
	autoCfg := alefb.AutoMLConfig{MaxCandidates: *candidates, Seed: *seed, Workers: *workers, TrainEngine: trainEngine}
	fbCfg := alefb.FeedbackConfig{Bins: *bins, Threshold: *threshold, Workers: *workers}

	var fb *alefb.Feedback
	var best *alefb.Ensemble
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fatal(err)
		}
		best, err = alefb.LoadEnsemble(f, train)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded ensemble from %s (refit on training data)\n", *loadPath)
		fb, err = alefb.WithinFeedback(best, train, fbCfg)
		if err != nil {
			fatal(err)
		}
	} else if *cross > 0 {
		fmt.Printf("running %d AutoML searches for a Cross-ALE committee...\n", *cross)
		var ensembles []*alefb.Ensemble
		fb, ensembles, err = alefb.CrossFeedback(train, autoCfg, *cross, fbCfg)
		if err != nil {
			fatal(err)
		}
		best = ensembles[0]
		for _, e := range ensembles {
			if e.ValScore > best.ValScore {
				best = e
			}
		}
	} else {
		fmt.Println("running AutoML search...")
		best, err = alefb.Train(train, autoCfg)
		if err != nil {
			fatal(err)
		}
		fb, err = alefb.WithinFeedback(best, train, fbCfg)
		if err != nil {
			fatal(err)
		}
	}

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatal(err)
		}
		if err := alefb.SaveEnsemble(f, best, *seed); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("saved ensemble description to %s\n", *savePath)
	}

	fmt.Printf("ensemble: %s (validation balanced accuracy %.3f)\n", best.Name(), best.ValScore)
	for _, m := range best.Members {
		fmt.Printf("  member %-40s weight %.2f  val %.3f\n", m.Model.Name(), m.Weight, m.ValScore)
	}
	if *testPath != "" {
		test, err := loadCSV(*testPath)
		if err != nil {
			fatal(err)
		}
		pred := best.Predict(test.X)
		fmt.Printf("test balanced accuracy: %.3f over %d rows\n",
			metrics.BalancedAccuracy(test.Schema.NumClasses(), test.Y, pred), test.Len())
	}

	fmt.Println()
	fmt.Println(fb.Explain())

	if *suggestN > 0 {
		pts := fb.Sample(*suggestN, rng.New(*seed^0xa1e))
		if len(pts) == 0 {
			fmt.Println("no suggestions: the committee agrees everywhere at this threshold")
			return
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		cw := csv.NewWriter(w)
		header := make([]string, 0, train.Schema.NumFeatures())
		for _, f := range train.Schema.Features {
			header = append(header, f.Name)
		}
		if err := cw.Write(header); err != nil {
			fatal(err)
		}
		rec := make([]string, len(header))
		for _, x := range pts {
			for j, v := range x {
				rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
			}
			if err := cw.Write(rec); err != nil {
				fatal(err)
			}
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			fatal(err)
		}
		if *out != "" {
			fmt.Printf("wrote %d suggestions to %s — label them and append to the training CSV\n", len(pts), *out)
		}
	}
}

func loadCSV(path string) (*alefb.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return alefb.ReadCSV(f)
}

// writeMemProfile snapshots the heap after a final GC so the profile
// reflects live allocations, not garbage awaiting collection.
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alefb:", err)
	os.Exit(1)
}
