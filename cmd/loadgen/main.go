// Command loadgen drives deterministic closed-loop load against a running
// serve instance: a fixed number of workers issue a seeded mix of
// predict/ALE/regions/health requests back-to-back and report the status
// and latency distribution, 429 sheds included. With a fixed seed and
// config the request mix is reproducible, which makes it usable both as a
// quick manual overload probe and inside the soak test.
//
// Usage:
//
//	loadgen -base http://127.0.0.1:8080 -n 500 -c 8
//	loadgen -base http://127.0.0.1:8080 -mix 1,1,1,1   # uniform mix
//	loadgen -base http://127.0.0.1:8080 -models default,video,voip
//	loadgen -base http://127.0.0.1:8080 -feedback-rate 2   # mixed traffic
//	loadgen -version
//
// -feedback-rate interleaves feedback-ingest requests (labelled rows
// drawn from the schema) with the read mix; the report breaks latency
// and status down per endpoint so ingestion overhead on the predict
// path is directly measurable. When the target runs the drift monitor,
// a feedback-carrying run also reports the off-path evaluator's
// counters (completed evaluations, coalesced gate crossings, cumulative
// evaluation time) next to — but separate from — the ingest-ack
// latency, which no longer includes evaluation work.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/netml/alefb/internal/serve"
)

// version identifies the load-generator build.
const version = "alefb-loadgen 0.10.0"

func main() {
	var (
		base        = flag.String("base", "http://127.0.0.1:8080", "server base URL")
		requests    = flag.Int("n", 200, "total requests to issue")
		concurrency = flag.Int("c", 4, "concurrent workers")
		rows        = flag.Int("rows", 16, "rows per predict batch")
		seed        = flag.Uint64("seed", 1, "random seed (fixes the request mix)")
		mixSpec     = flag.String("mix", "", "predict,ale,regions,health weights (default 8,1,0.5,0.5)")
		modelsSpec  = flag.String("models", "", "comma-separated tenant models to spread load across (default: the default model)")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		feedback    = flag.Float64("feedback-rate", 0, "mix weight of feedback-ingest requests interleaved with the read mix")
		showVersion = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version)
		return
	}

	mix := serve.DefaultMix()
	if *mixSpec != "" {
		var err error
		if mix, err = parseMix(*mixSpec); err != nil {
			fatal(err)
		}
	}
	if *feedback > 0 {
		mix.Feedback = *feedback
	}
	var tenants []string
	if *modelsSpec != "" {
		for _, m := range strings.Split(*modelsSpec, ",") {
			if m = strings.TrimSpace(m); m != "" {
				tenants = append(tenants, m)
			}
		}
	}
	report, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		Base:        *base,
		Concurrency: *concurrency,
		Requests:    *requests,
		Rows:        *rows,
		Seed:        *seed,
		Mix:         mix,
		Models:      tenants,
		Timeout:     *timeout,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(report)
}

// parseMix reads "predict,ale,regions,health" weights.
func parseMix(spec string) (serve.Mix, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 4 {
		return serve.Mix{}, fmt.Errorf("mix %q: want 4 comma-separated weights", spec)
	}
	w := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return serve.Mix{}, fmt.Errorf("mix weight %q invalid", p)
		}
		w[i] = v
	}
	return serve.Mix{Predict: w[0], ALE: w[1], Regions: w[2], Health: w[3]}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
