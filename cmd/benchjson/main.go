// Command benchjson converts `go test -bench -benchmem` text output into
// a machine-readable JSON comparison. It reads a baseline sweep and a
// current sweep (results/bench_*.txt by default) and writes one JSON
// document pairing every benchmark's ns/op, B/op and allocs/op across the
// two, with derived speedup and allocation-reduction factors.
//
// Usage:
//
//	go run ./cmd/benchjson -baseline results/bench_baseline.txt \
//	    -current results/bench_current.txt -out BENCH_ML.json
//
// With -check it becomes a regression gate instead of a converter: the
// sweep named by -current is compared against the measurements recorded
// in the committed JSON (-json), and the exit status is nonzero when any
// benchmark's ns/op exceeds its recorded value by more than -threshold.
// A sweep that regresses must either be fixed or explicitly acknowledged
// by regenerating the JSON:
//
//	go run ./cmd/benchjson -check -json BENCH_ML.json \
//	    -current results/bench_current.txt -threshold 1.30
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// version identifies the converter build; bump when the JSON schema
// changes.
const version = "alefb-benchjson 0.7.0"

// metrics holds one benchmark line's measurements. Extra carries any
// custom b.ReportMetric columns (e.g. the serving benchmark's "req/s"
// and "reqs/batch"), keyed by unit.
type metrics struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// entry pairs a benchmark's baseline and current measurements. Speedup is
// baseline ns/op over current ns/op; AllocReduction is the same ratio for
// allocs/op, omitted when the current count is zero (JSON has no +Inf).
type entry struct {
	Name           string   `json:"name"`
	Baseline       *metrics `json:"baseline,omitempty"`
	Current        *metrics `json:"current,omitempty"`
	Speedup        *float64 `json:"speedup,omitempty"`
	AllocReduction *float64 `json:"alloc_reduction,omitempty"`
}

type report struct {
	BaselineFile string  `json:"baseline_file"`
	CurrentFile  string  `json:"current_file"`
	Benchmarks   []entry `json:"benchmarks"`
}

// benchLine matches one -benchmem output row, e.g.
//
//	BenchmarkForestPredictBatch-8   2562   430741 ns/op   264288 B/op   10501 allocs/op
//	BenchmarkServePredictLoad64     12926  178374 ns/op   5612 req/s   45.04 reqs/batch   11411 B/op   135 allocs/op
//
// The -N GOMAXPROCS suffix is optional and stripped from the name;
// custom b.ReportMetric columns between ns/op and B/op are captured as
// extras.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op((?:\s+[0-9.]+ \S+)*?)\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op`)

// extraMetric splits one custom column of the middle group, e.g.
// "5612 req/s".
var extraMetric = regexp.MustCompile(`([0-9.]+) (\S+)`)

func parseFile(path string) (map[string]metrics, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]metrics)
	for _, line := range strings.Split(string(b), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		bytes, _ := strconv.ParseFloat(m[4], 64)
		allocs, _ := strconv.ParseFloat(m[5], 64)
		mt := metrics{NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs}
		for _, ex := range extraMetric.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(ex[1], 64)
			if err != nil {
				continue
			}
			if mt.Extra == nil {
				mt.Extra = make(map[string]float64)
			}
			mt.Extra[ex[2]] = v
		}
		out[m[1]] = mt
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in %s", path)
	}
	return out, nil
}

// checkRegressions gates a sweep against the committed JSON: every
// benchmark recorded in the report with a current ns/op must not exceed
// it by more than threshold in the sweep. Benchmarks present only on one
// side are reported but do not fail the gate (new benchmarks land before
// the JSON is regenerated; renames are caught by the smoke run). It
// returns the number of regressions.
func checkRegressions(rep report, sweep map[string]metrics, sweepPath string, threshold float64) int {
	regressions := 0
	for _, e := range rep.Benchmarks {
		if e.Current == nil || e.Current.NsPerOp <= 0 {
			continue
		}
		m, ok := sweep[e.Name]
		if !ok {
			fmt.Printf("benchjson: note: %s recorded in JSON but absent from %s\n", e.Name, sweepPath)
			continue
		}
		ratio := m.NsPerOp / e.Current.NsPerOp
		if ratio > threshold {
			fmt.Printf("benchjson: REGRESSION %s: %.0f ns/op vs recorded %.0f (%.2fx > %.2fx threshold)\n",
				e.Name, m.NsPerOp, e.Current.NsPerOp, ratio, threshold)
			regressions++
		}
	}
	recorded := make(map[string]bool, len(rep.Benchmarks))
	for _, e := range rep.Benchmarks {
		recorded[e.Name] = true
	}
	for n := range sweep {
		if !recorded[n] {
			fmt.Printf("benchjson: note: %s in %s but not recorded in JSON (regenerate with bench-json)\n", n, sweepPath)
		}
	}
	return regressions
}

func main() {
	baselinePath := flag.String("baseline", "results/bench_baseline.txt", "baseline sweep (go test -bench -benchmem output)")
	currentPath := flag.String("current", "results/bench_current.txt", "current sweep")
	outPath := flag.String("out", "BENCH_ML.json", "output JSON path")
	check := flag.Bool("check", false, "regression-gate mode: compare -current against the committed -json instead of writing a report")
	jsonPath := flag.String("json", "BENCH_ML.json", "committed report to gate against (with -check)")
	threshold := flag.Float64("threshold", 1.30, "max allowed ns/op ratio vs the recorded value before -check fails")
	showVer := flag.Bool("version", false, "print the version and exit")
	flag.Parse()
	if *showVer {
		fmt.Println(version)
		return
	}

	if *check {
		raw, err := os.ReadFile(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var rep report
		if err := json.Unmarshal(raw, &rep); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		sweep, err := parseFile(*currentPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if n := checkRegressions(rep, sweep, *currentPath, *threshold); n > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed past %.2fx vs %s\n", n, *threshold, *jsonPath)
			os.Exit(1)
		}
		fmt.Printf("benchjson: %s within %.2fx of %s\n", *currentPath, *threshold, *jsonPath)
		return
	}

	base, err := parseFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	cur, err := parseFile(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	names := make(map[string]bool)
	for n := range base {
		names[n] = true
	}
	for n := range cur {
		names[n] = true
	}
	rep := report{BaselineFile: *baselinePath, CurrentFile: *currentPath}
	for n := range names {
		e := entry{Name: n}
		if m, ok := base[n]; ok {
			mm := m
			e.Baseline = &mm
		}
		if m, ok := cur[n]; ok {
			mm := m
			e.Current = &mm
		}
		if e.Baseline != nil && e.Current != nil && e.Current.NsPerOp > 0 {
			s := round2(e.Baseline.NsPerOp / e.Current.NsPerOp)
			e.Speedup = &s
			if e.Current.AllocsPerOp > 0 {
				a := round2(e.Baseline.AllocsPerOp / e.Current.AllocsPerOp)
				e.AllocReduction = &a
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool { return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name })

	j, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*outPath, append(j, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks)\n", *outPath, len(rep.Benchmarks))
}

func round2(v float64) float64 {
	return float64(int(v*100+0.5)) / 100
}
