package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeSweep(t *testing.T, lines string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "sweep.txt")
	if err := os.WriteFile(p, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseFileExtras(t *testing.T) {
	p := writeSweep(t, `
goos: linux
BenchmarkGBDTFit-8   	      50	  20181316 ns/op	  310128 B/op	    2169 allocs/op
BenchmarkServePredictLoad64     12926  178374 ns/op   5612 req/s   45.04 reqs/batch   11411 B/op   135 allocs/op
not a benchmark line
`)
	m, err := parseFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(m), m)
	}
	if got := m["BenchmarkGBDTFit"]; got.NsPerOp != 20181316 || got.BytesPerOp != 310128 || got.AllocsPerOp != 2169 {
		t.Fatalf("GBDTFit = %+v", got)
	}
	serve := m["BenchmarkServePredictLoad64"]
	if serve.Extra["req/s"] != 5612 || serve.Extra["reqs/batch"] != 45.04 {
		t.Fatalf("extras = %+v", serve.Extra)
	}
}

func TestCheckRegressions(t *testing.T) {
	rec := func(ns float64) *metrics { return &metrics{NsPerOp: ns} }
	rep := report{Benchmarks: []entry{
		{Name: "BenchmarkA", Current: rec(100)},
		{Name: "BenchmarkB", Current: rec(1000)},
		{Name: "BenchmarkRecordedOnly", Current: rec(50)},
		{Name: "BenchmarkNoCurrent"},
	}}
	sweep := map[string]metrics{
		"BenchmarkA":         {NsPerOp: 120},  // 1.2x: within a 1.3 threshold
		"BenchmarkB":         {NsPerOp: 1400}, // 1.4x: regression
		"BenchmarkNewOnly":   {NsPerOp: 10},   // unrecorded: note, not failure
		"BenchmarkNoCurrent": {NsPerOp: 99},   // no recorded current: skipped
	}
	if n := checkRegressions(rep, sweep, "sweep.txt", 1.30); n != 1 {
		t.Fatalf("regressions = %d, want 1 (only BenchmarkB)", n)
	}
	if n := checkRegressions(rep, sweep, "sweep.txt", 1.50); n != 0 {
		t.Fatalf("regressions at 1.50x = %d, want 0", n)
	}
	// Faster-than-recorded sweeps never fail, even at threshold 1.0.
	fast := map[string]metrics{"BenchmarkA": {NsPerOp: 60}, "BenchmarkB": {NsPerOp: 900}}
	if n := checkRegressions(rep, fast, "sweep.txt", 1.0); n != 0 {
		t.Fatalf("faster sweep flagged: %d", n)
	}
}
