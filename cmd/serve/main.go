// Command serve runs the hardened HTTP inference/feedback service: it
// trains an AutoML ensemble on a CSV dataset and serves batch prediction,
// ALE curves, disagreement regions and operator-triggered retraining with
// load shedding, panic isolation, a retrain circuit breaker and last-good
// snapshot serving.
//
// Usage:
//
//	serve -train data.csv                    # bootstrap + listen on :8080
//	serve -train data.csv -addr :9090 -budget 24
//	serve -version
//
// Endpoints: GET /healthz, GET /readyz, GET /v1/schema,
// POST /v1/predict, /v1/ale, /v1/regions, /v1/retrain.
//
// SIGINT/SIGTERM trigger a graceful shutdown that drains in-flight
// requests before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/core"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/serve"
)

// version identifies the serving layer build; bump alongside API changes.
const version = "alefb-serve 0.4.0"

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		trainPath    = flag.String("train", "", "training CSV (required)")
		budget       = flag.Int("budget", 24, "AutoML pipelines to evaluate at bootstrap and retrain")
		bins         = flag.Int("bins", 32, "ALE grid resolution for /v1/ale and /v1/regions")
		workers      = flag.Int("workers", 0, "worker goroutines for search and committees (0 = all cores)")
		seed         = flag.Uint64("seed", 1, "random seed")
		maxInFlight  = flag.Int("max-inflight", 64, "concurrently executing /v1 requests before queueing")
		maxQueue     = flag.Int("max-queue", 0, "queued requests before shedding with 429 (0 = 2*max-inflight)")
		reqTimeout   = flag.Duration("request-timeout", 10*time.Second, "per-request deadline for read endpoints")
		retrainTO    = flag.Duration("retrain-timeout", 5*time.Minute, "per-attempt retrain deadline")
		brkThreshold = flag.Int("breaker-threshold", 3, "consecutive retrain failures that open the circuit breaker")
		brkCooldown  = flag.Duration("breaker-cooldown", 30*time.Second, "how long the open breaker sheds retrains before probing")
		showVersion  = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version)
		return
	}
	if *trainPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*trainPath)
	if err != nil {
		fatal(err)
	}
	train, err := data.ReadCSV(f)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("read %s: %w", *trainPath, err))
	}
	fmt.Printf("loaded %s: %d rows, %d features, %d classes\n",
		*trainPath, train.Len(), train.Schema.NumFeatures(), train.Schema.NumClasses())

	s := serve.New(serve.Config{
		AutoML:           automl.Config{MaxCandidates: *budget, Seed: *seed, Workers: *workers},
		Feedback:         core.Config{Bins: *bins, Workers: *workers},
		MaxInFlight:      *maxInFlight,
		MaxQueue:         *maxQueue,
		RequestTimeout:   *reqTimeout,
		RetrainTimeout:   *retrainTO,
		BreakerThreshold: *brkThreshold,
		BreakerCooldown:  *brkCooldown,
		Log:              os.Stderr,
	})

	fmt.Printf("bootstrapping ensemble (budget %d, seed %d)...\n", *budget, *seed)
	start := time.Now()
	if err := s.Bootstrap(context.Background(), train); err != nil {
		fatal(err)
	}
	fmt.Printf("bootstrap done in %s\n", time.Since(start).Round(time.Millisecond))

	// Serve until a termination signal, then drain gracefully.
	errCh := make(chan error, 1)
	go func() { errCh <- s.ListenAndServe(*addr) }()
	fmt.Printf("listening on %s\n", *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil {
			fatal(err)
		}
	case sig := <-sigCh:
		fmt.Printf("received %s, draining...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			fatal(fmt.Errorf("shutdown: %w", err))
		}
		if err := <-errCh; err != nil {
			fatal(err)
		}
		fmt.Println("drained, bye")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serve:", err)
	os.Exit(1)
}
