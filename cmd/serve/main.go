// Command serve runs the hardened HTTP inference/feedback service: it
// trains AutoML ensembles on CSV datasets and serves batch prediction,
// ALE curves, disagreement regions and operator-triggered retraining with
// request coalescing, load shedding, panic isolation, per-model retrain
// circuit breakers and last-good snapshot serving.
//
// Usage:
//
//	serve -train data.csv                    # bootstrap + listen on :8080
//	serve -train data.csv -addr :9090 -budget 24
//	serve -train data.csv -model video=video.csv -model voip=voip.csv
//	serve -version
//
// Endpoints: GET /healthz, GET /readyz, GET /v1/schema, GET /v1/models,
// GET /v1/status, POST /v1/predict, /v1/ale, /v1/regions, /v1/retrain,
// /v1/feedback, /v1/rollback — plus the same endpoints per tenant under
// /v1/models/{name}/....
//
// -feedback-dir enables the always-on loop's durability: labelled rows
// POSTed to /v1/feedback are appended to a per-model write-ahead log and
// fsynced before the request is acknowledged, and a restart replays them
// into the bootstrap training set. -drift-threshold (with -drift-window)
// turns on the drift monitor: when the committee's Cross-ALE
// disagreement over the most recent ingested rows exceeds the threshold,
// the model retrains in the background — warm-starting from the served
// ensemble when possible — while reads keep hitting the last-good
// snapshot. Drift is evaluated off the ingest path by a per-model
// debounced evaluator at deterministic record-sequence gates
// (-drift-eval-every spaces them); ingest acks return as soon as the
// rows are durable. -sync-drift-eval restores the legacy inline
// evaluation.
//
// ALE curves and disagreement regions are memoized per published
// snapshot: repeated /v1/ale and /v1/regions queries are O(1) lookups,
// invalidated wholesale whenever a retrain, rollback or restart
// publishes a new snapshot version. -no-interp-cache disables the cache.
//
// -snapshot-dir makes the models themselves durable: every published
// ensemble is serialized (CRC-framed, fsynced, atomically renamed) into
// a per-model versioned history before it starts serving, a restart
// recovers the newest decodable snapshot and is ready without
// retraining, and POST /v1/rollback re-points serving to a prior
// version. -snapshot-retain bounds the on-disk history.
//
// -train bootstraps the pinned default model; each repeatable
// -model name=path.csv bootstraps an additional named tenant. Concurrent
// predict requests of one model are coalesced into micro-batches (bounded
// by -max-batch-rows and -batch-delay) and answered from one ensemble
// sweep; -no-coalesce restores the per-request sweep.
//
// SIGINT/SIGTERM trigger a graceful shutdown that drains in-flight
// requests before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/core"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/serve"
)

// version identifies the serving layer build; bump alongside API changes.
const version = "alefb-serve 0.10.0"

// modelSpec is one -model name=path.csv mapping.
type modelSpec struct {
	name, path string
}

func main() {
	var models []modelSpec
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		trainPath      = flag.String("train", "", "training CSV of the default model (required)")
		budget         = flag.Int("budget", 24, "AutoML pipelines to evaluate at bootstrap and retrain")
		bins           = flag.Int("bins", 32, "ALE grid resolution for /v1/ale and /v1/regions")
		workers        = flag.Int("workers", 0, "worker goroutines for search and committees (0 = all cores)")
		seed           = flag.Uint64("seed", 1, "random seed")
		maxInFlight    = flag.Int("max-inflight", 64, "concurrently executing /v1 requests before queueing")
		maxQueue       = flag.Int("max-queue", 0, "queued requests before shedding with 429 (0 = 2*max-inflight)")
		reqTimeout     = flag.Duration("request-timeout", 10*time.Second, "per-request deadline for read endpoints")
		retrainTO      = flag.Duration("retrain-timeout", 5*time.Minute, "per-attempt retrain deadline")
		brkThreshold   = flag.Int("breaker-threshold", 3, "consecutive retrain failures that open the circuit breaker")
		brkCooldown    = flag.Duration("breaker-cooldown", 30*time.Second, "how long the open breaker sheds retrains before probing")
		maxModels      = flag.Int("max-models", 0, "resident models before LRU eviction of the coldest unpinned one (0 = default)")
		maxBatchRows   = flag.Int("max-batch-rows", 0, "row cap of one coalesced predict batch (0 = default)")
		batchDelay     = flag.Duration("batch-delay", 0, "max wait for a coalesced batch to fill (0 = default)")
		predictWorkers = flag.Int("predict-workers", 0, "worker goroutines for one coalesced sweep (0 = all cores)")
		noCoalesce     = flag.Bool("no-coalesce", false, "disable request coalescing; sweep each predict request alone")
		feedbackDir    = flag.String("feedback-dir", "", "base directory for durable per-model feedback WALs (empty = memory-only)")
		snapshotDir    = flag.String("snapshot-dir", "", "base directory for durable model snapshots; restarts recover instead of retraining (empty = memory-only)")
		snapshotRetain = flag.Int("snapshot-retain", 0, "snapshot versions kept per model for rollback (0 = default 4, negative = all)")
		driftThreshold = flag.Float64("drift-threshold", 0, "Cross-ALE disagreement over the feedback window that triggers a retrain (0 = off)")
		driftWindow    = flag.Int("drift-window", 0, "most recent feedback rows the drift monitor analyses (0 = default 64)")
		driftEvalEvery = flag.Int("drift-eval-every", 0, "acknowledged feedback rows between off-path drift evaluations (0 = default 1, every batch)")
		syncDrift      = flag.Bool("sync-drift-eval", false, "evaluate drift inline on the ingest path (legacy behavior; slower acks)")
		noInterpCache  = flag.Bool("no-interp-cache", false, "disable the snapshot-keyed ALE/regions cache; recompute every request")
		showVersion    = flag.Bool("version", false, "print the version and exit")
	)
	flag.Func("model", "additional tenant model as name=path.csv (repeatable)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path.csv, got %q", v)
		}
		models = append(models, modelSpec{name: name, path: path})
		return nil
	})
	flag.Parse()
	if *showVersion {
		fmt.Println(version)
		return
	}
	if *trainPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	s := serve.New(serve.Config{
		AutoML:             automl.Config{MaxCandidates: *budget, Seed: *seed, Workers: *workers},
		Feedback:           core.Config{Bins: *bins, Workers: *workers},
		MaxInFlight:        *maxInFlight,
		MaxQueue:           *maxQueue,
		RequestTimeout:     *reqTimeout,
		RetrainTimeout:     *retrainTO,
		BreakerThreshold:   *brkThreshold,
		BreakerCooldown:    *brkCooldown,
		MaxModels:          *maxModels,
		MaxBatchRows:       *maxBatchRows,
		MaxBatchDelay:      *batchDelay,
		PredictWorkers:     *predictWorkers,
		DisableCoalescing:  *noCoalesce,
		FeedbackDir:        *feedbackDir,
		SnapshotDir:        *snapshotDir,
		SnapshotRetain:     *snapshotRetain,
		DriftThreshold:     *driftThreshold,
		DriftWindow:        *driftWindow,
		DriftEvalEvery:     *driftEvalEvery,
		SyncDriftEval:      *syncDrift,
		DisableInterpCache: *noInterpCache,
		Log:                os.Stderr,
	})

	// Recovery-first bootstrap: a durable snapshot on disk makes the
	// model ready immediately (the feedback WAL suffix past the
	// snapshot's high-water mark is folded in, no search runs); only a
	// missing or undecodable snapshot falls through to the cold CSV
	// bootstrap.
	bootstrap := func(name, path string) {
		label := name
		if label == "" {
			label = serve.DefaultModel
		}
		if v, ok, err := s.RecoverModel(context.Background(), label); err != nil {
			fatal(err)
		} else if ok {
			fmt.Printf("recovered %s from snapshot v%d (no retrain)\n", label, v)
			return
		}
		train := loadCSV(path)
		fmt.Printf("bootstrapping %s ensemble (budget %d, seed %d)...\n", label, *budget, *seed)
		start := time.Now()
		var err error
		if name == "" {
			err = s.Bootstrap(context.Background(), train)
		} else {
			err = s.BootstrapModel(context.Background(), name, train)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("bootstrap of %s done in %s\n", label, time.Since(start).Round(time.Millisecond))
	}
	bootstrap("", *trainPath)
	for _, m := range models {
		bootstrap(m.name, m.path)
	}

	// Serve until a termination signal, then drain gracefully.
	errCh := make(chan error, 1)
	go func() { errCh <- s.ListenAndServe(*addr) }()
	fmt.Printf("listening on %s\n", *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil {
			fatal(err)
		}
	case sig := <-sigCh:
		fmt.Printf("received %s, draining...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			fatal(fmt.Errorf("shutdown: %w", err))
		}
		if err := <-errCh; err != nil {
			fatal(err)
		}
		fmt.Println("drained, bye")
	}
}

func loadCSV(path string) *data.Dataset {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	train, err := data.ReadCSV(f)
	if err != nil {
		fatal(fmt.Errorf("read %s: %w", path, err))
	}
	fmt.Printf("loaded %s: %d rows, %d features, %d classes\n",
		path, train.Len(), train.Schema.NumFeatures(), train.Schema.NumClasses())
	return train
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serve:", err)
	os.Exit(1)
}
