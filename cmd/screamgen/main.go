// Command screamgen generates the "Scream vs rest" dataset by emulation
// and writes it as CSV: for each sampled network condition (bottleneck
// rate, propagation delay, loss rate, concurrent flows) it runs all five
// congestion-control protocols in the packet-level emulator and labels
// whether the SCReAM-like protocol achieves the lowest latency.
//
// Usage:
//
//	screamgen -n 1161 -seed 1 -o train.csv
//	screamgen -n 5 -details        # print per-protocol results per row
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/netml/alefb/internal/rng"
	"github.com/netml/alefb/internal/screamset"
)

// version identifies the generator build; bump when the emulation or
// labeling changes.
const version = "alefb-screamgen 0.5.0"

func main() {
	var (
		n        = flag.Int("n", 100, "number of data points")
		seed     = flag.Uint64("seed", 1, "random seed")
		out      = flag.String("o", "", "output CSV path (default stdout)")
		duration = flag.Float64("duration", 0, "emulated seconds per protocol run (0 = auto, scaled by RTT)")
		details  = flag.Bool("details", false, "print per-protocol emulation results instead of CSV")
		showVer  = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version)
		return
	}

	gen := screamset.NewGenerator(*seed)
	gen.Duration = *duration
	r := rng.New(*seed)

	if *details {
		for i := 0; i < *n; i++ {
			x := screamset.SampleCondition(r)
			winner, results, err := gen.Evaluate(x)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("condition: rate=%.1f Mbps delay=%.1f ms loss=%.4f flows=%.0f -> winner %s\n",
				x[screamset.FeatLinkRate], x[screamset.FeatDelay], x[screamset.FeatLoss], x[screamset.FeatFlows], winner)
			for _, pr := range results {
				mark := " "
				if pr.Name == winner {
					mark = "*"
				}
				fmt.Printf("  %s %-7s throughput=%7.2f Mbps  mean delay=%7.2f ms  p95=%7.2f ms  qualified=%v\n",
					mark, pr.Name, pr.Result.TotalThroughputMbps, pr.Result.MeanOWDMs, pr.Result.P95OWDMs, pr.Qualified)
			}
		}
		return
	}

	d := gen.Generate(*n, r)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := d.WriteCSV(w); err != nil {
		fatal(err)
	}
	counts := d.ClassCounts()
	fmt.Fprintf(os.Stderr, "generated %d rows (%d scream-wins, %d other)\n", d.Len(), counts[screamset.LabelScream], counts[screamset.LabelOther])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "screamgen:", err)
	os.Exit(1)
}
