// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run table1 -scale reduced
//	experiments -run all -scale paper -out results/
//	experiments -run table1 -checkpoint ckpt/            # snapshot each rep
//	experiments -run table1 -checkpoint ckpt/ -resume    # continue after a kill
//	experiments -run ucl -timeout 30m                    # hard deadline
//
// Experiments: table1, ucl, figure1, figure2, threshold, ablation-
// disagreement, ablation-crossruns, ablation-priors, all. Scale "paper"
// uses the paper's sizes (minutes to hours); "reduced" is a faithful
// smaller run (tens of seconds to minutes).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"github.com/netml/alefb/internal/experiments"
	"github.com/netml/alefb/internal/ml"
)

// version identifies the experiments-driver build; bump alongside
// experiment or preset changes.
const version = "alefb-experiments 0.7.0"

func main() {
	var (
		run     = flag.String("run", "table1", "experiment: table1|ucl|figure1|figure2|threshold|loop|ablation-disagreement|ablation-crossruns|ablation-priors|all")
		scale   = flag.String("scale", "reduced", "experiment scale: paper|reduced")
		seed    = flag.Uint64("seed", 0, "override the experiment seed (0 keeps the preset)")
		reps    = flag.Int("reps", 0, "override repetitions/splits (0 keeps the preset)")
		budget  = flag.Int("budget", 0, "override AutoML pipelines per run (0 keeps the preset)")
		cross   = flag.Int("crossruns", 0, "override Cross-ALE committee size (0 keeps the preset)")
		out     = flag.String("out", "", "directory for SVG figures and CSV dumps (optional)")
		quiet   = flag.Bool("quiet", false, "suppress progress lines")
		workers = flag.Int("workers", 0, "worker goroutines for trials, AutoML search and ALE committees (0 = all cores, 1 = serial; results are identical either way)")
		engine  = flag.String("trainengine", "presort", "tree-family training engine for AutoML candidates: presort (exact) or hist (histogram-binned split finding, faster at paper scale)")
		timeout = flag.Duration("timeout", 0, "hard wall-clock deadline for table1/ucl; on expiry the run aborts with context.DeadlineExceeded (0 = none)")
		ckpt    = flag.String("checkpoint", "", "directory for per-trial snapshots of table1/ucl; a snapshot is written after every completed repetition/split")
		resume  = flag.Bool("resume", false, "restore completed trials from -checkpoint instead of recomputing them (requires -checkpoint); the resumed result is bit-identical to an uninterrupted run")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile (pprof) to this file")
		memprof = flag.String("memprofile", "", "write a heap profile (pprof) to this file on exit")
		showVer = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version)
		return
	}
	if *resume && *ckpt == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer writeMemProfile(*memprof)
	}

	scream, ucl, err := configs(*scale)
	if err != nil {
		fatal(err)
	}
	if *seed != 0 {
		scream.Seed = *seed
		ucl.Seed = *seed + 1
	}
	if *reps > 0 {
		scream.Reps = *reps
		ucl.Splits = *reps
	}
	if *budget > 0 {
		scream.AutoML.MaxCandidates = *budget
		ucl.AutoML.MaxCandidates = *budget
	}
	if *cross > 0 {
		scream.CrossRuns = *cross
		ucl.CrossRuns = *cross
	}
	scream.Workers = *workers
	scream.AutoML.Workers = *workers
	ucl.Workers = *workers
	ucl.AutoML.Workers = *workers
	trainEngine, err := ml.ParseTrainEngine(*engine)
	if err != nil {
		fatal(err)
	}
	scream.AutoML.TrainEngine = trainEngine
	ucl.AutoML.TrainEngine = trainEngine
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(fmt.Errorf("create output dir: %w", err))
		}
	}
	progress := os.Stderr
	if *quiet {
		progress = nil
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var opts experiments.RunOptions
	opts.Resume = *resume
	if *ckpt != "" {
		cp, err := experiments.OpenCheckpoint(*ckpt)
		if err != nil {
			fatal(err)
		}
		opts.Checkpoint = cp
	}

	wanted := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		wanted[strings.TrimSpace(name)] = true
	}
	all := wanted["all"]
	ran := 0

	if all || wanted["table1"] {
		res, err := experiments.RunTable1Ctx(ctx, scream, opts, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		saveJSON(*out, "table1.json", res)
		ran++
	}
	if all || wanted["ucl"] {
		res, err := experiments.RunUCLCtx(ctx, ucl, opts, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		saveJSON(*out, "ucl.json", res)
		ran++
	}
	if all || wanted["figure1"] {
		fig, err := experiments.RunFigure1(scream, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println(fig.Plot.RenderASCII(76, 16))
		fmt.Printf("flagged regions (T=%.4g): %s\n\n", fig.Threshold, fig.Regions())
		saveSVG(*out, "figure1.svg", fig)
		ran++
	}
	if all || wanted["figure2"] {
		figs, err := experiments.RunFigure2(ucl, progress)
		if err != nil {
			fatal(err)
		}
		for _, fig := range []*experiments.FigureResult{figs.SrcPort, figs.DstPort} {
			fmt.Println(fig.Plot.RenderASCII(76, 14))
			fmt.Printf("flagged regions (T=%.4g): %s\n\n", fig.Threshold, fig.Regions())
		}
		saveSVG(*out, "figure2a.svg", figs.SrcPort)
		saveSVG(*out, "figure2b.svg", figs.DstPort)
		ran++
	}
	if all || wanted["threshold"] {
		res, err := experiments.RunThresholdSweep(scream, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		ran++
	}
	if all || wanted["ablation-disagreement"] {
		res, err := experiments.RunAblationDisagreement(scream, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		ran++
	}
	if all || wanted["ablation-crossruns"] {
		res, err := experiments.RunAblationCrossRuns(scream, nil, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		ran++
	}
	if all || wanted["loop"] {
		res, err := experiments.RunLoopExperiment(scream, 3, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		ran++
	}
	if all || wanted["ablation-priors"] {
		res, err := experiments.RunAblationPriors(scream, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		ran++
	}
	if ran == 0 {
		fatal(fmt.Errorf("unknown experiment %q; see -h", *run))
	}
}

// configs returns the scream and UCL configurations for a scale.
func configs(scale string) (experiments.ScreamConfig, experiments.UCLConfig, error) {
	switch scale {
	case "paper":
		return experiments.PaperScreamConfig(), experiments.PaperUCLConfig(), nil
	case "reduced":
		return experiments.ReducedScreamConfig(), experiments.ReducedUCLConfig(), nil
	default:
		return experiments.ScreamConfig{}, experiments.UCLConfig{}, fmt.Errorf("unknown scale %q (paper|reduced)", scale)
	}
}

// saveSVG writes a figure if an output directory was given.
func saveSVG(dir, name string, fig *experiments.FigureResult) {
	if dir == "" {
		return
	}
	path := filepath.Join(dir, name)
	if err := fig.Plot.WriteSVGFile(path, 720, 420); err != nil {
		fmt.Fprintf(os.Stderr, "warning: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

// saveJSON writes a result as JSON if an output directory was given; the
// bytes are stable across resumes, worker counts and reruns, so they can
// be diffed directly.
func saveJSON(dir, name string, v interface{}) {
	if dir == "" {
		return
	}
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "warning: %v\n", err)
		return
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "warning: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

// writeMemProfile snapshots the heap after a final GC so the profile
// reflects live allocations, not garbage awaiting collection.
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
