package alefb

// Benchmark harness: one benchmark per table/figure of the paper (see
// DESIGN.md's experiment index). Each benchmark runs the corresponding
// experiment at the Reduced scale — the full pipeline with smaller sizes —
// and reports the headline numbers via testing.B metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates a miniature of the paper's evaluation. For paper-scale runs
// use cmd/experiments -scale paper.

import (
	"testing"

	"github.com/netml/alefb/internal/experiments"
)

// BenchmarkTable1 regenerates Table 1 (Scream-vs-rest balanced accuracy
// across the nine feedback algorithms, with Wilcoxon p-values).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.ReducedScreamConfig()
		cfg.Seed += uint64(i)
		res, err := experiments.RunTable1(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Row(experiments.AlgNoFeedback).Mean*100, "%bal-acc-nofb")
		b.ReportMetric(res.Row(experiments.AlgWithinALE).Mean*100, "%bal-acc-within")
		b.ReportMetric(res.Row(experiments.AlgCrossALE).Mean*100, "%bal-acc-cross")
		b.ReportMetric(res.Row(experiments.AlgUpsampling).Mean*100, "%bal-acc-upsample")
	}
}

// BenchmarkUCL regenerates the §4.2 results on the synthetic firewall
// dataset (pool-restricted feedback, 40/20/40 splits).
func BenchmarkUCL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.ReducedUCLConfig()
		cfg.Seed += uint64(i)
		res, err := experiments.RunUCL(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Row(experiments.AlgNoFeedback).Mean*100, "%bal-acc-nofb")
		b.ReportMetric(res.Row(experiments.AlgWithinALEPool).Mean*100, "%bal-acc-within-pool")
	}
}

// BenchmarkFigure1 regenerates Figure 1 (the committee ALE plot for
// config.link_rate with its flagged high-variance regions).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.ReducedScreamConfig()
		cfg.Seed += uint64(i)
		fig, err := experiments.RunFigure1(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Analysis.PeakStd, "peak-ale-std")
		b.ReportMetric(float64(len(fig.Analysis.Intervals)), "flagged-regions")
	}
}

// BenchmarkFigure2 regenerates Figure 2 (source-port and destination-port
// ALE plots on the firewall data).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.ReducedUCLConfig()
		cfg.Seed += uint64(i)
		figs, err := experiments.RunFigure2(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(figs.SrcPort.Analysis.PeakStd, "srcport-peak-std")
		b.ReportMetric(figs.DstPort.Analysis.PeakStd, "dstport-peak-std")
	}
}

// BenchmarkThresholdSweep regenerates the §4.2 "Setting the threshold"
// analysis (flagged-subspace size as a function of T).
func BenchmarkThresholdSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.ReducedScreamConfig()
		cfg.Seed += uint64(i)
		res, err := experiments.RunThresholdSweep(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MedianThreshold, "median-T")
		b.ReportMetric(res.Points[0].RegionFraction-res.Points[len(res.Points)-1].RegionFraction, "region-shrink")
	}
}

// BenchmarkAblationDisagreement (AB1) compares ALE-variance vs PDP-variance
// vs prediction-entropy disagreement on identical committees.
func BenchmarkAblationDisagreement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.ReducedScreamConfig()
		cfg.Reps = 1
		cfg.Seed += uint64(i)
		res, err := experiments.RunAblationDisagreement(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Mean*100, "%bal-acc-ale")
		b.ReportMetric(res.Rows[2].Mean*100, "%bal-acc-entropy")
	}
}

// BenchmarkAblationCrossRuns (AB2) varies the Cross-ALE committee size.
func BenchmarkAblationCrossRuns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.ReducedScreamConfig()
		cfg.Reps = 1
		cfg.Seed += uint64(i)
		res, err := experiments.RunAblationCrossRuns(cfg, []int{1, 3}, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[len(res.Rows)-1].Mean*100, "%bal-acc-max-runs")
	}
}

// BenchmarkAblationPriors (AB3) measures the §1 domain-prior straw-man.
func BenchmarkAblationPriors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.ReducedScreamConfig()
		cfg.Seed += uint64(i)
		res, err := experiments.RunAblationPriors(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Mean*100, "%bal-acc-free")
		b.ReportMetric(res.Rows[1].Mean*100, "%bal-acc-priors")
	}
}

// BenchmarkFeedbackLoop measures the iterative multi-round campaign (an
// extension of the paper's single-round protocol).
func BenchmarkFeedbackLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.ReducedScreamConfig()
		cfg.Seed += uint64(i)
		res, err := experiments.RunLoopExperiment(cfg, 2, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FinalAccuracy*100, "%bal-acc-final")
	}
}
