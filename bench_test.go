package alefb

// Benchmark harness: one benchmark per table/figure of the paper (see
// DESIGN.md's experiment index). Each benchmark runs the corresponding
// experiment at the Reduced scale — the full pipeline with smaller sizes —
// and reports the headline numbers via testing.B metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates a miniature of the paper's evaluation. For paper-scale runs
// use cmd/experiments -scale paper.

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/core"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/experiments"
	"github.com/netml/alefb/internal/rng"
)

// BenchmarkTable1 regenerates Table 1 (Scream-vs-rest balanced accuracy
// across the nine feedback algorithms, with Wilcoxon p-values).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.ReducedScreamConfig()
		cfg.Seed += uint64(i)
		res, err := experiments.RunTable1(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Row(experiments.AlgNoFeedback).Mean*100, "%bal-acc-nofb")
		b.ReportMetric(res.Row(experiments.AlgWithinALE).Mean*100, "%bal-acc-within")
		b.ReportMetric(res.Row(experiments.AlgCrossALE).Mean*100, "%bal-acc-cross")
		b.ReportMetric(res.Row(experiments.AlgUpsampling).Mean*100, "%bal-acc-upsample")
	}
}

// BenchmarkUCL regenerates the §4.2 results on the synthetic firewall
// dataset (pool-restricted feedback, 40/20/40 splits).
func BenchmarkUCL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.ReducedUCLConfig()
		cfg.Seed += uint64(i)
		res, err := experiments.RunUCL(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Row(experiments.AlgNoFeedback).Mean*100, "%bal-acc-nofb")
		b.ReportMetric(res.Row(experiments.AlgWithinALEPool).Mean*100, "%bal-acc-within-pool")
	}
}

// BenchmarkFigure1 regenerates Figure 1 (the committee ALE plot for
// config.link_rate with its flagged high-variance regions).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.ReducedScreamConfig()
		cfg.Seed += uint64(i)
		fig, err := experiments.RunFigure1(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Analysis.PeakStd, "peak-ale-std")
		b.ReportMetric(float64(len(fig.Analysis.Intervals)), "flagged-regions")
	}
}

// BenchmarkFigure2 regenerates Figure 2 (source-port and destination-port
// ALE plots on the firewall data).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.ReducedUCLConfig()
		cfg.Seed += uint64(i)
		figs, err := experiments.RunFigure2(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(figs.SrcPort.Analysis.PeakStd, "srcport-peak-std")
		b.ReportMetric(figs.DstPort.Analysis.PeakStd, "dstport-peak-std")
	}
}

// BenchmarkThresholdSweep regenerates the §4.2 "Setting the threshold"
// analysis (flagged-subspace size as a function of T).
func BenchmarkThresholdSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.ReducedScreamConfig()
		cfg.Seed += uint64(i)
		res, err := experiments.RunThresholdSweep(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MedianThreshold, "median-T")
		b.ReportMetric(res.Points[0].RegionFraction-res.Points[len(res.Points)-1].RegionFraction, "region-shrink")
	}
}

// BenchmarkAblationDisagreement (AB1) compares ALE-variance vs PDP-variance
// vs prediction-entropy disagreement on identical committees.
func BenchmarkAblationDisagreement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.ReducedScreamConfig()
		cfg.Reps = 1
		cfg.Seed += uint64(i)
		res, err := experiments.RunAblationDisagreement(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Mean*100, "%bal-acc-ale")
		b.ReportMetric(res.Rows[2].Mean*100, "%bal-acc-entropy")
	}
}

// BenchmarkAblationCrossRuns (AB2) varies the Cross-ALE committee size.
func BenchmarkAblationCrossRuns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.ReducedScreamConfig()
		cfg.Reps = 1
		cfg.Seed += uint64(i)
		res, err := experiments.RunAblationCrossRuns(cfg, []int{1, 3}, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[len(res.Rows)-1].Mean*100, "%bal-acc-max-runs")
	}
}

// BenchmarkAblationPriors (AB3) measures the §1 domain-prior straw-man.
func BenchmarkAblationPriors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.ReducedScreamConfig()
		cfg.Seed += uint64(i)
		res, err := experiments.RunAblationPriors(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Mean*100, "%bal-acc-free")
		b.ReportMetric(res.Rows[1].Mean*100, "%bal-acc-priors")
	}
}

// BenchmarkFeedbackLoop measures the iterative multi-round campaign (an
// extension of the paper's single-round protocol).
func BenchmarkFeedbackLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.ReducedScreamConfig()
		cfg.Seed += uint64(i)
		res, err := experiments.RunLoopExperiment(cfg, 2, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FinalAccuracy*100, "%bal-acc-final")
	}
}

// --- Parallelism benchmarks -------------------------------------------
//
// The three hot paths below accept a Workers knob and guarantee
// bit-identical results for any worker count (see DESIGN.md, "Parallel
// execution & determinism"). Each benchmark runs the same workload
// serially and with several worker counts so
//
//	go test -bench=Workers -benchtime=2x
//
// reports the scaling on the current machine. On a single-core host all
// variants necessarily take the same time (modulo a small pool overhead);
// speedup appears once GOMAXPROCS > 1.

// benchWorkerCounts returns the deduplicated worker counts to sweep:
// serial, a fixed mid-size pool, and every core the host has.
func benchWorkerCounts() []int {
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	out := counts[:0]
	for _, c := range counts {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// benchDataset builds a deterministic 4-feature, 2-class sample.
func benchDataset(n int, seed uint64) *data.Dataset {
	schema := &data.Schema{
		Features: []data.Feature{
			{Name: "f0", Min: 0, Max: 1}, {Name: "f1", Min: 0, Max: 1},
			{Name: "f2", Min: 0, Max: 1}, {Name: "f3", Min: 0, Max: 1},
		},
		Classes: []string{"a", "b"},
	}
	r := rng.New(seed)
	d := data.New(schema)
	for i := 0; i < n; i++ {
		x := []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
		y := 0
		if x[0]+0.3*x[1] > 0.6 {
			y = 1
		}
		d.Append(x, y)
	}
	return d
}

// BenchmarkAutoMLSearchWorkers measures hot path 1: candidate fitting and
// scoring inside the AutoML search (internal/automl).
func BenchmarkAutoMLSearchWorkers(b *testing.B) {
	train := benchDataset(600, 3)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := automl.Config{MaxCandidates: 24, Generations: 2, EnsembleSize: 5, Seed: 7, Workers: w}
				if _, err := automl.Run(train, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCommitteeALEWorkers measures hot path 2: per-model committee
// curve computation (internal/interpret via internal/core).
func BenchmarkCommitteeALEWorkers(b *testing.B) {
	train := benchDataset(4000, 5)
	ens, err := automl.Run(train, automl.Config{MaxCandidates: 10, EnsembleSize: 8, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	committee := core.WithinCommittee(ens)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Compute(committee, train, core.Config{Bins: 64, Classes: []int{1}, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCrossCommitteeWorkers measures hot path 3: the independent
// AutoML runs behind Cross-ALE committees and experiment trials
// (internal/core, internal/experiments).
func BenchmarkCrossCommitteeWorkers(b *testing.B) {
	train := benchDataset(400, 9)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := automl.Config{MaxCandidates: 8, EnsembleSize: 4, Seed: 13, Workers: w}
				if _, _, err := core.CrossCommittee(train, cfg, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
