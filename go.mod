module github.com/netml/alefb

go 1.22
